// Tests for the experiment-orchestration subsystem (src/exp/): the
// work-stealing thread pool, the deterministic replicate seed-stream, the
// parallel runner's aggregation, the scenario registry, and the sinks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <vector>

#include "exp/probes.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "exp/thread_pool.hpp"
#include "support/check.hpp"

namespace geogossip::exp {
namespace {

// ----------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 257;  // deliberately not a worker multiple
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(16,
               [&](std::size_t i) {
                 if (i == 7) throw std::runtime_error("boom");
                 completed.fetch_add(1);
               }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // the batch still drains
}

TEST(ThreadPool, SingleWorkerHasTheSameExceptionContract) {
  ThreadPool pool(1);
  int completed = 0;
  EXPECT_THROW(
      pool.run(16,
               [&](std::size_t i) {
                 if (i == 7) throw std::runtime_error("boom");
                 ++completed;
               }),
      std::runtime_error);
  EXPECT_EQ(completed, 15);  // inline path drains the batch too
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

// ----------------------------------------------------------- seed-stream ----

TEST(SeedStream, IsAPureFunctionOfItsIndices) {
  EXPECT_EQ(replicate_seed(1, 0, 0), replicate_seed(1, 0, 0));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(1, 0, 1));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(1, 1, 0));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(2, 0, 0));
}

TEST(SeedStream, NearbyIndicesDecorrelate) {
  std::set<std::uint64_t> seeds;
  for (std::size_t cell = 0; cell < 16; ++cell) {
    for (std::uint32_t rep = 0; rep < 16; ++rep) {
      seeds.insert(replicate_seed(42, cell, rep));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 16u);
}

// -------------------------------------------------------------- scenario ----

Scenario tiny_scenario(std::uint32_t replicates) {
  Scenario scenario;
  scenario.name = "tiny";
  scenario.replicates = replicates;
  scenario.master_seed = 7;
  for (const std::size_t n : {64, 96, 128}) {
    auto& cell = scenario.add(core::ProtocolKind::kBoydPairwise, n);
    cell.options.eps = 1e-2;
  }
  auto& dimakis = scenario.add(core::ProtocolKind::kDimakisGeographic, 64);
  dimakis.options.eps = 1e-2;
  return scenario;
}

TEST(Scenario, AddLabelsCellsWithKindName) {
  const auto scenario = tiny_scenario(2);
  EXPECT_EQ(scenario.cells[0].label, "boyd");
  EXPECT_EQ(scenario.cells[3].label, "dimakis");
}

TEST(Scenario, MakeProtocolSweepBuildsOneCellPerSize) {
  const auto sweep = make_protocol_sweep(
      "sweep", core::ProtocolKind::kDimakisGeographic, {64, 128, 256}, 5,
      11, 1.4);
  EXPECT_EQ(sweep.cells.size(), 3u);
  EXPECT_EQ(sweep.replicates, 5u);
  EXPECT_EQ(sweep.cells[1].n, 128u);
  EXPECT_DOUBLE_EQ(sweep.cells[2].radius_multiplier, 1.4);
}

TEST(ScenarioRegistry, BuiltinsRegisterAndUnknownNamesThrow) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  EXPECT_TRUE(registry.contains("e5-quick"));
  const auto scenario = registry.make("e5-quick");
  EXPECT_FALSE(scenario.cells.empty());
  EXPECT_THROW(registry.make("no-such-scenario"), ArgumentError);
}

TEST(ScenarioRegistry, EveryExperimentHasAConstructibleQuickScenario) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  const auto names = registry.names();
  for (int figure = 1; figure <= 11; ++figure) {
    // Incremental += rather than one operator+ chain: GCC 12's -Wrestrict
    // fires a false positive (PR105329) on the chained form under -Werror.
    std::string prefix = "e";
    prefix += std::to_string(figure);
    prefix += '-';
    bool found = false;
    for (const auto& name : names) {
      if (name.rfind(prefix, 0) != 0) continue;
      if (name.size() < 6 || name.substr(name.size() - 6) != "-quick") {
        continue;
      }
      found = true;
      const auto scenario = registry.make(name);
      EXPECT_FALSE(scenario.cells.empty()) << name;
      EXPECT_GE(scenario.replicates, 1u) << name;
    }
    EXPECT_TRUE(found) << "no -quick scenario registered for E" << figure;
  }
}

TEST(ScenarioRegistry, ProbeScenariosAlsoShipPaperPresets) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  for (const int figure : {1, 2, 3, 4, 6, 7, 8, 9}) {
    bool found = false;
    std::string prefix = "e";  // += avoids the GCC 12 -Wrestrict FP
    prefix += std::to_string(figure);
    prefix += '-';
    for (const auto& name : registry.names()) {
      if (name.rfind(prefix, 0) == 0 && name.size() >= 6 &&
          name.substr(name.size() - 6) == "-paper") {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no -paper preset for E" << figure;
  }
}

TEST(ScenarioRegistry, XlPresetsAreRegisteredWithMemoryHints) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  for (const char* name : {"e5-scaling-xl", "e6-hops-xl"}) {
    ASSERT_TRUE(registry.contains(name)) << name;
    // --list visibility is exactly names() membership (parallel_sweep
    // renders that list), so assert through the same call.
    const auto names = registry.names();
    EXPECT_NE(std::find(names.begin(), names.end(), std::string(name)),
              names.end());
    const auto scenario = registry.make(name);
    ASSERT_FALSE(scenario.cells.empty()) << name;
    std::size_t top_n = 0;
    for (const auto& cell : scenario.cells) {
      top_n = std::max(top_n, cell.n);
      // Every XL cell must carry a memory hint so --mem-budget can gate
      // concurrent builds, and the hint must at least cover the CSR.
      EXPECT_GT(cell.mem_hint_bytes,
                static_cast<std::uint64_t>(cell.n) * 8) << name;
    }
    EXPECT_EQ(top_n, std::size_t{1} << 20) << name;
  }
}

// ---------------------------------------------------------------- runner ----

TEST(Runner, AggregatesExpectedReplicateCountPerCell) {
  constexpr std::uint32_t kReplicates = 5;
  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary =
      Runner(options).run(tiny_scenario(kReplicates));

  ASSERT_EQ(summary.cells.size(), 4u);
  EXPECT_EQ(summary.replicates, kReplicates);
  for (const auto& cs : summary.cells) {
    EXPECT_EQ(cs.replicates, kReplicates);
    EXPECT_EQ(cs.raw.size(), kReplicates);
    EXPECT_LE(cs.converged, kReplicates);
    EXPECT_DOUBLE_EQ(
        cs.converged_fraction,
        static_cast<double>(cs.converged) / kReplicates);
    // Tiny dense deployments at eps=1e-2 must actually average.
    EXPECT_GT(cs.converged, 0u);
    for (std::uint32_t r = 0; r < kReplicates; ++r) {
      EXPECT_EQ(cs.raw[r].seed,
                replicate_seed(summary.master_seed, cs.cell_index, r));
    }
  }
}

TEST(Runner, ThreadCountDoesNotChangeAggregates) {
  const auto scenario = tiny_scenario(4);

  RunnerOptions serial;
  serial.threads = 1;
  const auto one = Runner(serial).run(scenario);

  RunnerOptions parallel;
  parallel.threads = 4;
  const auto four = Runner(parallel).run(scenario);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const auto& a = one.cells[i];
    const auto& b = four.cells[i];
    EXPECT_EQ(a.converged, b.converged);
    // Bit-identical, not approximately equal: the seed-stream plus
    // index-ordered aggregation make thread count irrelevant.
    EXPECT_EQ(a.median_tx, b.median_tx);
    EXPECT_EQ(a.q25_tx, b.q25_tx);
    EXPECT_EQ(a.q75_tx, b.q75_tx);
    EXPECT_EQ(a.mean_local_share, b.mean_local_share);
    EXPECT_EQ(a.mean_long_range_share, b.mean_long_range_share);
    EXPECT_EQ(a.mean_control_share, b.mean_control_share);
  }
}

TEST(Runner, SharedSeedStreamGivesPairedDraws) {
  // Two cells with the same protocol/size and the same pinned seed_stream
  // must produce bit-identical replicate outcomes (identical graph, field
  // and protocol randomness); an auto-stream cell must not.
  Scenario scenario;
  scenario.name = "paired";
  scenario.replicates = 3;
  scenario.master_seed = 21;
  for (int i = 0; i < 3; ++i) {
    auto& cell = scenario.add(core::ProtocolKind::kBoydPairwise, 64);
    cell.options.eps = 1e-2;
    if (i < 2) cell.seed_stream = 0;
  }

  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(scenario);
  ASSERT_EQ(summary.cells.size(), 3u);
  for (std::uint32_t r = 0; r < scenario.replicates; ++r) {
    EXPECT_EQ(summary.cells[0].raw[r].seed, summary.cells[1].raw[r].seed);
    EXPECT_EQ(summary.cells[0].raw[r].transmissions.total(),
              summary.cells[1].raw[r].transmissions.total());
    EXPECT_NE(summary.cells[0].raw[r].seed, summary.cells[2].raw[r].seed);
  }
  EXPECT_EQ(summary.cells[0].median_tx, summary.cells[1].median_tx);
}

TEST(Runner, RunReplicateMatchesRunnerRaw) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 3;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(scenario);
  const auto direct = run_replicate(
      scenario.cells[1], replicate_seed(scenario.master_seed, 1, 0));
  const auto& via_runner = summary.cells[1].raw[0];
  EXPECT_EQ(direct.converged, via_runner.converged);
  EXPECT_EQ(direct.transmissions.total(), via_runner.transmissions.total());
  EXPECT_EQ(direct.final_error, via_runner.final_error);
}

TEST(Runner, ProgressCallbackFiresOncePerReplicate) {
  const auto scenario = tiny_scenario(3);
  std::atomic<int> calls{0};
  RunnerOptions options;
  options.threads = 2;
  options.progress = [&](const Cell&, std::size_t, std::uint32_t,
                         const ReplicateResult&) { calls.fetch_add(1); };
  Runner(options).run(scenario);
  EXPECT_EQ(calls.load(),
            static_cast<int>(scenario.cells.size() * scenario.replicates));
}

TEST(Runner, ProgressReportsSlotIdentity) {
  const auto scenario = tiny_scenario(2);
  std::set<std::pair<std::size_t, std::uint32_t>> slots;
  RunnerOptions options;
  options.threads = 2;
  options.progress = [&](const Cell& cell, std::size_t cell_index,
                         std::uint32_t replicate, const ReplicateResult&) {
    EXPECT_EQ(scenario.cells[cell_index].label, cell.label);
    slots.emplace(cell_index, replicate);
  };
  Runner(options).run(scenario);
  // Every (cell, replicate) pair reported exactly once.
  EXPECT_EQ(slots.size(), scenario.cells.size() * scenario.replicates);
}

TEST(Runner, MemoryBudgetGatesSchedulingNotResults) {
  auto scenario = tiny_scenario(3);
  // Hints chosen so the budget admits at most one hinted replicate at a
  // time — including one hint LARGER than the whole budget, which must
  // degrade to run-alone rather than deadlock.
  scenario.cells[0].mem_hint_bytes = 600;
  scenario.cells[1].mem_hint_bytes = 1500;  // > budget: runs alone
  scenario.cells[2].mem_hint_bytes = 900;
  RunnerOptions ungated;
  ungated.threads = 3;
  const auto baseline = Runner(ungated).run(scenario);

  RunnerOptions gated = ungated;
  gated.memory_budget_bytes = 1000;
  const auto summary = Runner(gated).run(scenario);

  ASSERT_EQ(summary.cells.size(), baseline.cells.size());
  for (std::size_t c = 0; c < summary.cells.size(); ++c) {
    EXPECT_EQ(summary.cells[c].converged, baseline.cells[c].converged);
    EXPECT_EQ(summary.cells[c].median_tx, baseline.cells[c].median_tx);
    EXPECT_EQ(summary.cells[c].q25_tx, baseline.cells[c].q25_tx);
    EXPECT_EQ(summary.cells[c].q75_tx, baseline.cells[c].q75_tx);
  }
}

// --------------------------------------------------------------- metrics ----

/// Synthetic probe: deterministic metrics from (cell, seed) only.
Scenario metric_scenario(std::uint32_t replicates) {
  Scenario scenario;
  scenario.name = "metric-probe";
  scenario.replicates = replicates;
  scenario.master_seed = 13;
  for (const std::size_t n : {8, 16, 24}) {
    auto& cell = scenario.add("probe n=" + std::to_string(n),
                              core::ProtocolKind::kBoydPairwise, n);
    cell.probe = "synthetic";
    cell.params["scale"] = 2.0;
    cell.trial = [](const Cell& c, std::uint64_t seed) {
      ReplicateResult result;
      result.converged = true;
      result.metrics["value"] =
          c.param("scale") * static_cast<double>(seed % 97);
      result.metrics["n_copy"] = static_cast<double>(c.n);
      return result;
    };
  }
  return scenario;
}

TEST(Metrics, CellParamLookupFallsBack) {
  Cell cell;
  cell.params["x"] = 1.5;
  EXPECT_DOUBLE_EQ(cell.param("x"), 1.5);
  EXPECT_DOUBLE_EQ(cell.param("missing", -2.0), -2.0);
}

TEST(Metrics, AggregatesEveryKeyWithOrderStatistics) {
  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(metric_scenario(5));

  ASSERT_EQ(summary.cells.size(), 3u);
  for (const auto& cs : summary.cells) {
    ASSERT_EQ(cs.metrics.count("value"), 1u);
    ASSERT_EQ(cs.metrics.count("n_copy"), 1u);
    const auto& value = cs.metrics.at("value");
    EXPECT_EQ(value.count, 5u);
    // Recompute the aggregate from the raw replicates.
    double sum = 0.0;
    double lo = 1e300;
    double hi = -1e300;
    for (const auto& rr : cs.raw) {
      const double v = rr.metrics.at("value");
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_DOUBLE_EQ(value.mean, sum / 5.0);
    EXPECT_DOUBLE_EQ(value.min, lo);
    EXPECT_DOUBLE_EQ(value.max, hi);
    EXPECT_GE(value.median, lo);
    EXPECT_LE(value.median, hi);
    EXPECT_DOUBLE_EQ(cs.metrics.at("n_copy").mean,
                     static_cast<double>(cs.cell.n));
    EXPECT_DOUBLE_EQ(cs.metric_mean("n_copy"),
                     static_cast<double>(cs.cell.n));
    EXPECT_DOUBLE_EQ(cs.metric_mean("absent", -1.0), -1.0);
    // Probes always converge: the measurement itself is the outcome.
    EXPECT_EQ(cs.converged, 5u);
  }
}

TEST(Metrics, AggregationIsBitIdenticalAcrossThreadCounts) {
  const auto scenario = metric_scenario(4);

  RunnerOptions serial;
  serial.threads = 1;
  const auto one = Runner(serial).run(scenario);

  RunnerOptions parallel;
  parallel.threads = 4;
  const auto four = Runner(parallel).run(scenario);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const auto& a = one.cells[i].metrics;
    const auto& b = four.cells[i].metrics;
    ASSERT_EQ(a.size(), b.size());
    for (const auto& [key, ms] : a) {
      ASSERT_EQ(b.count(key), 1u) << key;
      const auto& other = b.at(key);
      EXPECT_EQ(ms.count, other.count) << key;
      // Bit-identical, not approximately equal.
      EXPECT_EQ(ms.mean, other.mean) << key;
      EXPECT_EQ(ms.median, other.median) << key;
      EXPECT_EQ(ms.q95, other.q95) << key;
      EXPECT_EQ(ms.min, other.min) << key;
      EXPECT_EQ(ms.max, other.max) << key;
    }
  }
}

TEST(Metrics, ProbeQuickScenarioIsBitIdenticalAcrossThreadCounts) {
  // End-to-end over a real probe: E7 quick builds fast graphs only.
  register_builtin_scenarios();
  auto scenario = ScenarioRegistry::instance().make("e7-connectivity-quick");
  scenario.replicates = 3;

  RunnerOptions serial;
  serial.threads = 1;
  const auto one = Runner(serial).run(scenario);
  RunnerOptions parallel;
  parallel.threads = 4;
  const auto four = Runner(parallel).run(scenario);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    for (const auto& [key, ms] : one.cells[i].metrics) {
      EXPECT_EQ(ms.mean, four.cells[i].metrics.at(key).mean) << key;
      EXPECT_EQ(ms.q95, four.cells[i].metrics.at(key).q95) << key;
    }
  }
}

TEST(Metrics, PairedProbeCellsShareDeployments) {
  // E9 pins rejection on/off to one seed stream per size: replicate k of
  // both cells must draw the same seed (same graph, same draw sequence).
  const auto scenario = make_e9_rejection({64}, 50, 1.2, 2, 7);
  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(scenario);
  ASSERT_EQ(summary.cells.size(), 2u);
  for (std::uint32_t r = 0; r < scenario.replicates; ++r) {
    EXPECT_EQ(summary.cells[0].raw[r].seed, summary.cells[1].raw[r].seed);
  }
  // With sampling off only self-targets count as rejections, so the on
  // cell's rejection rate dominates the off cell's.
  EXPECT_GE(summary.cells[1].metric_mean("rejects_per_draw"),
            summary.cells[0].metric_mean("rejects_per_draw"));
}

TEST(Metrics, HorizonCellsExtendTheSameTrajectory) {
  // E1's horizon family shares a stream: the t=2n cell's mean norm must
  // exceed the t=10n cell's (same trajectories observed earlier), and the
  // contraction ratio must stay near or below 1.
  const auto scenario = make_e1_contraction({32}, 12, 3);
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(scenario);
  // 1 size x 3 alpha modes x 5 horizons.
  ASSERT_EQ(summary.cells.size(), 15u);
  const auto& first = summary.cells[0];   // paper mode, t=2n
  const auto& last = summary.cells[4];    // paper mode, t=10n
  EXPECT_EQ(first.cell.seed_stream, last.cell.seed_stream);
  EXPECT_GT(first.metric_mean("norm_sq"), last.metric_mean("norm_sq"));
  EXPECT_GT(last.metric_mean("bound"), 0.0);
}

// ----------------------------------------------------------------- sinks ----

TEST(Sinks, CsvSinkWritesHeaderOnceAndOneRowPerCell) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(scenario);

  std::ostringstream out;
  CsvSink sink(out);
  sink.write(summary);
  sink.write(summary);  // appending must not repeat the header

  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 1 + 2 * summary.cells.size());
  EXPECT_EQ(text.find("scenario,cell,protocol,n"), 0u);
  EXPECT_NE(text.find("tiny,boyd,boyd,64"), std::string::npos);
}

TEST(Sinks, JsonLinesSinkEmitsOneObjectPerCell) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(scenario);

  std::ostringstream out;
  JsonLinesSink(out).write(summary);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, summary.cells.size());
  EXPECT_NE(text.find("\"scenario\":\"tiny\""), std::string::npos);
  EXPECT_NE(text.find("\"protocol\":\"dimakis\""), std::string::npos);
}

TEST(Sinks, CsvSinkAppendsMetricColumnsInSortedKeyOrder) {
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(metric_scenario(3));

  std::ostringstream out;
  CsvSink sink(out);
  sink.write(summary);
  const std::string text = out.str();
  const std::string header = text.substr(0, text.find('\n'));
  // Base columns, then param_<key>, then the five order statistics per
  // metric key, sorted by key.
  EXPECT_NE(header.find("scenario,cell,protocol,n"), std::string::npos);
  EXPECT_NE(header.find("param_scale"), std::string::npos);
  EXPECT_NE(header.find(
                "n_copy_mean,n_copy_median,n_copy_q95,n_copy_min,"
                "n_copy_max,value_mean,value_median,value_q95,value_min,"
                "value_max"),
            std::string::npos);
  // Probe cells report the probe name in the protocol column.
  EXPECT_NE(text.find("probe n=8,synthetic,8"), std::string::npos);
}

TEST(Sinks, JsonLinesSinkEmitsMetricsObject) {
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(metric_scenario(3));

  std::ostringstream out;
  JsonLinesSink(out).write(summary);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"protocol\":\"synthetic\""), std::string::npos);
  EXPECT_NE(text.find("\"params\":{\"scale\":2}"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(text.find("\"value\":{\"count\":3,\"mean\":"),
            std::string::npos);
  EXPECT_NE(text.find("\"q95\":"), std::string::npos);
}

TEST(Sinks, JsonLinesReplicateRecordsStreamOnePerReplicate) {
  const auto scenario = tiny_scenario(2);
  std::ostringstream out;
  JsonLinesSink sink(out);
  RunnerOptions options;
  options.threads = 2;
  options.progress = [&](const Cell& cell, std::size_t cell_index,
                         std::uint32_t replicate,
                         const ReplicateResult& result) {
    sink.write_replicate(scenario.name, scenario.master_seed, cell,
                         cell_index, replicate, result);
  };
  const auto summary = Runner(options).run(scenario);
  sink.write(summary);  // cell lines interleave fine after the records

  const std::string text = out.str();
  std::size_t records = 0;
  std::size_t pos = 0;
  while ((pos = text.find("{\"record\":\"replicate\"", pos)) !=
         std::string::npos) {
    ++records;
    ++pos;
  }
  EXPECT_EQ(records, scenario.cells.size() * scenario.replicates);
  // Each record carries the resume identity and the outcome.
  EXPECT_NE(text.find("\"cell_index\":"), std::string::npos);
  EXPECT_NE(text.find("\"replicate\":"), std::string::npos);
  EXPECT_NE(text.find("\"master_seed\":7"), std::string::npos);
  EXPECT_NE(text.find("\"transmissions\":"), std::string::npos);
  // The per-cell summary lines still follow.
  EXPECT_NE(text.find("\"scenario\":\"tiny\",\"cell\":\"boyd\""),
            std::string::npos);
}

TEST(Sinks, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace geogossip::exp
