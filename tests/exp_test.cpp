// Tests for the experiment-orchestration subsystem (src/exp/): the
// work-stealing thread pool, the deterministic replicate seed-stream, the
// parallel runner's aggregation, the scenario registry, and the sinks.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "exp/thread_pool.hpp"
#include "support/check.hpp"

namespace geogossip::exp {
namespace {

// ----------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 257;  // deliberately not a worker multiple
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(16,
               [&](std::size_t i) {
                 if (i == 7) throw std::runtime_error("boom");
                 completed.fetch_add(1);
               }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // the batch still drains
}

TEST(ThreadPool, SingleWorkerHasTheSameExceptionContract) {
  ThreadPool pool(1);
  int completed = 0;
  EXPECT_THROW(
      pool.run(16,
               [&](std::size_t i) {
                 if (i == 7) throw std::runtime_error("boom");
                 ++completed;
               }),
      std::runtime_error);
  EXPECT_EQ(completed, 15);  // inline path drains the batch too
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

// ----------------------------------------------------------- seed-stream ----

TEST(SeedStream, IsAPureFunctionOfItsIndices) {
  EXPECT_EQ(replicate_seed(1, 0, 0), replicate_seed(1, 0, 0));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(1, 0, 1));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(1, 1, 0));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(2, 0, 0));
}

TEST(SeedStream, NearbyIndicesDecorrelate) {
  std::set<std::uint64_t> seeds;
  for (std::size_t cell = 0; cell < 16; ++cell) {
    for (std::uint32_t rep = 0; rep < 16; ++rep) {
      seeds.insert(replicate_seed(42, cell, rep));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 16u);
}

// -------------------------------------------------------------- scenario ----

Scenario tiny_scenario(std::uint32_t replicates) {
  Scenario scenario;
  scenario.name = "tiny";
  scenario.replicates = replicates;
  scenario.master_seed = 7;
  for (const std::size_t n : {64, 96, 128}) {
    auto& cell = scenario.add(core::ProtocolKind::kBoydPairwise, n);
    cell.options.eps = 1e-2;
  }
  auto& dimakis = scenario.add(core::ProtocolKind::kDimakisGeographic, 64);
  dimakis.options.eps = 1e-2;
  return scenario;
}

TEST(Scenario, AddLabelsCellsWithKindName) {
  const auto scenario = tiny_scenario(2);
  EXPECT_EQ(scenario.cells[0].label, "boyd");
  EXPECT_EQ(scenario.cells[3].label, "dimakis");
}

TEST(Scenario, MakeProtocolSweepBuildsOneCellPerSize) {
  const auto sweep = make_protocol_sweep(
      "sweep", core::ProtocolKind::kDimakisGeographic, {64, 128, 256}, 5,
      11, 1.4);
  EXPECT_EQ(sweep.cells.size(), 3u);
  EXPECT_EQ(sweep.replicates, 5u);
  EXPECT_EQ(sweep.cells[1].n, 128u);
  EXPECT_DOUBLE_EQ(sweep.cells[2].radius_multiplier, 1.4);
}

TEST(ScenarioRegistry, BuiltinsRegisterAndUnknownNamesThrow) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  EXPECT_TRUE(registry.contains("e5-quick"));
  const auto scenario = registry.make("e5-quick");
  EXPECT_FALSE(scenario.cells.empty());
  EXPECT_THROW(registry.make("no-such-scenario"), ArgumentError);
}

// ---------------------------------------------------------------- runner ----

TEST(Runner, AggregatesExpectedReplicateCountPerCell) {
  constexpr std::uint32_t kReplicates = 5;
  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary =
      Runner(options).run(tiny_scenario(kReplicates));

  ASSERT_EQ(summary.cells.size(), 4u);
  EXPECT_EQ(summary.replicates, kReplicates);
  for (const auto& cs : summary.cells) {
    EXPECT_EQ(cs.replicates, kReplicates);
    EXPECT_EQ(cs.raw.size(), kReplicates);
    EXPECT_LE(cs.converged, kReplicates);
    EXPECT_DOUBLE_EQ(
        cs.converged_fraction,
        static_cast<double>(cs.converged) / kReplicates);
    // Tiny dense deployments at eps=1e-2 must actually average.
    EXPECT_GT(cs.converged, 0u);
    for (std::uint32_t r = 0; r < kReplicates; ++r) {
      EXPECT_EQ(cs.raw[r].seed,
                replicate_seed(summary.master_seed, cs.cell_index, r));
    }
  }
}

TEST(Runner, ThreadCountDoesNotChangeAggregates) {
  const auto scenario = tiny_scenario(4);

  RunnerOptions serial;
  serial.threads = 1;
  const auto one = Runner(serial).run(scenario);

  RunnerOptions parallel;
  parallel.threads = 4;
  const auto four = Runner(parallel).run(scenario);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const auto& a = one.cells[i];
    const auto& b = four.cells[i];
    EXPECT_EQ(a.converged, b.converged);
    // Bit-identical, not approximately equal: the seed-stream plus
    // index-ordered aggregation make thread count irrelevant.
    EXPECT_EQ(a.median_tx, b.median_tx);
    EXPECT_EQ(a.q25_tx, b.q25_tx);
    EXPECT_EQ(a.q75_tx, b.q75_tx);
    EXPECT_EQ(a.mean_local_share, b.mean_local_share);
    EXPECT_EQ(a.mean_long_range_share, b.mean_long_range_share);
    EXPECT_EQ(a.mean_control_share, b.mean_control_share);
  }
}

TEST(Runner, SharedSeedStreamGivesPairedDraws) {
  // Two cells with the same protocol/size and the same pinned seed_stream
  // must produce bit-identical replicate outcomes (identical graph, field
  // and protocol randomness); an auto-stream cell must not.
  Scenario scenario;
  scenario.name = "paired";
  scenario.replicates = 3;
  scenario.master_seed = 21;
  for (int i = 0; i < 3; ++i) {
    auto& cell = scenario.add(core::ProtocolKind::kBoydPairwise, 64);
    cell.options.eps = 1e-2;
    if (i < 2) cell.seed_stream = 0;
  }

  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(scenario);
  ASSERT_EQ(summary.cells.size(), 3u);
  for (std::uint32_t r = 0; r < scenario.replicates; ++r) {
    EXPECT_EQ(summary.cells[0].raw[r].seed, summary.cells[1].raw[r].seed);
    EXPECT_EQ(summary.cells[0].raw[r].transmissions.total(),
              summary.cells[1].raw[r].transmissions.total());
    EXPECT_NE(summary.cells[0].raw[r].seed, summary.cells[2].raw[r].seed);
  }
  EXPECT_EQ(summary.cells[0].median_tx, summary.cells[1].median_tx);
}

TEST(Runner, RunReplicateMatchesRunnerRaw) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 3;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(scenario);
  const auto direct = run_replicate(
      scenario.cells[1], replicate_seed(scenario.master_seed, 1, 0));
  const auto& via_runner = summary.cells[1].raw[0];
  EXPECT_EQ(direct.converged, via_runner.converged);
  EXPECT_EQ(direct.transmissions.total(), via_runner.transmissions.total());
  EXPECT_EQ(direct.final_error, via_runner.final_error);
}

TEST(Runner, ProgressCallbackFiresOncePerReplicate) {
  const auto scenario = tiny_scenario(3);
  std::atomic<int> calls{0};
  RunnerOptions options;
  options.threads = 2;
  options.progress = [&](const Cell&, const ReplicateResult&) {
    calls.fetch_add(1);
  };
  Runner(options).run(scenario);
  EXPECT_EQ(calls.load(),
            static_cast<int>(scenario.cells.size() * scenario.replicates));
}

// ----------------------------------------------------------------- sinks ----

TEST(Sinks, CsvSinkWritesHeaderOnceAndOneRowPerCell) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(scenario);

  std::ostringstream out;
  CsvSink sink(out);
  sink.write(summary);
  sink.write(summary);  // appending must not repeat the header

  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 1 + 2 * summary.cells.size());
  EXPECT_EQ(text.find("scenario,cell,protocol,n"), 0u);
  EXPECT_NE(text.find("tiny,boyd,boyd,64"), std::string::npos);
}

TEST(Sinks, JsonLinesSinkEmitsOneObjectPerCell) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(scenario);

  std::ostringstream out;
  JsonLinesSink(out).write(summary);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, summary.cells.size());
  EXPECT_NE(text.find("\"scenario\":\"tiny\""), std::string::npos);
  EXPECT_NE(text.find("\"protocol\":\"dimakis\""), std::string::npos);
}

TEST(Sinks, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace geogossip::exp
