// Tests for the experiment-orchestration subsystem (src/exp/): the
// work-stealing thread pool, the deterministic replicate seed-stream, the
// parallel runner's aggregation, the scenario registry, and the sinks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/probes.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "exp/thread_pool.hpp"
#include "support/check.hpp"

namespace geogossip::exp {
namespace {

// ----------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 257;  // deliberately not a worker multiple
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(16,
               [&](std::size_t i) {
                 if (i == 7) throw std::runtime_error("boom");
                 completed.fetch_add(1);
               }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // the batch still drains
}

TEST(ThreadPool, SingleWorkerHasTheSameExceptionContract) {
  ThreadPool pool(1);
  int completed = 0;
  EXPECT_THROW(
      pool.run(16,
               [&](std::size_t i) {
                 if (i == 7) throw std::runtime_error("boom");
                 ++completed;
               }),
      std::runtime_error);
  EXPECT_EQ(completed, 15);  // inline path drains the batch too
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

// ----------------------------------------------------------- seed-stream ----

TEST(SeedStream, IsAPureFunctionOfItsIndices) {
  EXPECT_EQ(replicate_seed(1, 0, 0), replicate_seed(1, 0, 0));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(1, 0, 1));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(1, 1, 0));
  EXPECT_NE(replicate_seed(1, 0, 0), replicate_seed(2, 0, 0));
}

TEST(SeedStream, NearbyIndicesDecorrelate) {
  std::set<std::uint64_t> seeds;
  for (std::size_t cell = 0; cell < 16; ++cell) {
    for (std::uint32_t rep = 0; rep < 16; ++rep) {
      seeds.insert(replicate_seed(42, cell, rep));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 16u);
}

// -------------------------------------------------------------- scenario ----

Scenario tiny_scenario(std::uint32_t replicates) {
  Scenario scenario;
  scenario.name = "tiny";
  scenario.replicates = replicates;
  scenario.master_seed = 7;
  for (const std::size_t n : {64, 96, 128}) {
    auto& cell = scenario.add(core::ProtocolKind::kBoydPairwise, n);
    cell.options.eps = 1e-2;
  }
  auto& dimakis = scenario.add(core::ProtocolKind::kDimakisGeographic, 64);
  dimakis.options.eps = 1e-2;
  return scenario;
}

TEST(Scenario, AddLabelsCellsWithKindName) {
  const auto scenario = tiny_scenario(2);
  EXPECT_EQ(scenario.cells[0].label, "boyd");
  EXPECT_EQ(scenario.cells[3].label, "dimakis");
}

TEST(Scenario, MakeProtocolSweepBuildsOneCellPerSize) {
  const auto sweep = make_protocol_sweep(
      "sweep", core::ProtocolKind::kDimakisGeographic, {64, 128, 256}, 5,
      11, 1.4);
  EXPECT_EQ(sweep.cells.size(), 3u);
  EXPECT_EQ(sweep.replicates, 5u);
  EXPECT_EQ(sweep.cells[1].n, 128u);
  EXPECT_DOUBLE_EQ(sweep.cells[2].radius_multiplier, 1.4);
}

TEST(ScenarioRegistry, BuiltinsRegisterAndUnknownNamesThrow) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  EXPECT_TRUE(registry.contains("e5-quick"));
  const auto scenario = registry.make("e5-quick");
  EXPECT_FALSE(scenario.cells.empty());
  EXPECT_THROW(registry.make("no-such-scenario"), ArgumentError);
}

TEST(ScenarioRegistry, EveryExperimentHasAConstructibleQuickScenario) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  const auto names = registry.names();
  for (int figure = 1; figure <= 11; ++figure) {
    // Incremental += rather than one operator+ chain: GCC 12's -Wrestrict
    // fires a false positive (PR105329) on the chained form under -Werror.
    std::string prefix = "e";
    prefix += std::to_string(figure);
    prefix += '-';
    bool found = false;
    for (const auto& name : names) {
      if (name.rfind(prefix, 0) != 0) continue;
      if (name.size() < 6 || name.substr(name.size() - 6) != "-quick") {
        continue;
      }
      found = true;
      const auto scenario = registry.make(name);
      EXPECT_FALSE(scenario.cells.empty()) << name;
      EXPECT_GE(scenario.replicates, 1u) << name;
    }
    EXPECT_TRUE(found) << "no -quick scenario registered for E" << figure;
  }
}

TEST(ScenarioRegistry, ProbeScenariosAlsoShipPaperPresets) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  for (const int figure : {1, 2, 3, 4, 6, 7, 8, 9}) {
    bool found = false;
    std::string prefix = "e";  // += avoids the GCC 12 -Wrestrict FP
    prefix += std::to_string(figure);
    prefix += '-';
    for (const auto& name : registry.names()) {
      if (name.rfind(prefix, 0) == 0 && name.size() >= 6 &&
          name.substr(name.size() - 6) == "-paper") {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no -paper preset for E" << figure;
  }
}

TEST(ScenarioRegistry, XlPresetsAreRegisteredWithMemoryHints) {
  register_builtin_scenarios();
  auto& registry = ScenarioRegistry::instance();
  for (const char* name : {"e5-scaling-xl", "e6-hops-xl"}) {
    ASSERT_TRUE(registry.contains(name)) << name;
    // --list visibility is exactly names() membership (parallel_sweep
    // renders that list), so assert through the same call.
    const auto names = registry.names();
    EXPECT_NE(std::find(names.begin(), names.end(), std::string(name)),
              names.end());
    const auto scenario = registry.make(name);
    ASSERT_FALSE(scenario.cells.empty()) << name;
    std::size_t top_n = 0;
    for (const auto& cell : scenario.cells) {
      top_n = std::max(top_n, cell.n);
      // Every XL cell must carry a memory hint so --mem-budget can gate
      // concurrent builds, and the hint must at least cover the CSR.
      EXPECT_GT(cell.mem_hint_bytes,
                static_cast<std::uint64_t>(cell.n) * 8) << name;
    }
    EXPECT_EQ(top_n, std::size_t{1} << 20) << name;
  }
}

// ---------------------------------------------------------------- runner ----

TEST(Runner, AggregatesExpectedReplicateCountPerCell) {
  constexpr std::uint32_t kReplicates = 5;
  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary =
      Runner(options).run(tiny_scenario(kReplicates));

  ASSERT_EQ(summary.cells.size(), 4u);
  EXPECT_EQ(summary.replicates, kReplicates);
  for (const auto& cs : summary.cells) {
    EXPECT_EQ(cs.replicates, kReplicates);
    EXPECT_EQ(cs.raw.size(), kReplicates);
    EXPECT_LE(cs.converged, kReplicates);
    EXPECT_DOUBLE_EQ(
        cs.converged_fraction,
        static_cast<double>(cs.converged) / kReplicates);
    // Tiny dense deployments at eps=1e-2 must actually average.
    EXPECT_GT(cs.converged, 0u);
    for (std::uint32_t r = 0; r < kReplicates; ++r) {
      EXPECT_EQ(cs.raw[r].seed,
                replicate_seed(summary.master_seed, cs.cell_index, r));
    }
  }
}

TEST(Runner, ThreadCountDoesNotChangeAggregates) {
  const auto scenario = tiny_scenario(4);

  RunnerOptions serial;
  serial.threads = 1;
  const auto one = Runner(serial).run(scenario);

  RunnerOptions parallel;
  parallel.threads = 4;
  const auto four = Runner(parallel).run(scenario);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const auto& a = one.cells[i];
    const auto& b = four.cells[i];
    EXPECT_EQ(a.converged, b.converged);
    // Bit-identical, not approximately equal: the seed-stream plus
    // index-ordered aggregation make thread count irrelevant.
    EXPECT_EQ(a.median_tx, b.median_tx);
    EXPECT_EQ(a.q25_tx, b.q25_tx);
    EXPECT_EQ(a.q75_tx, b.q75_tx);
    EXPECT_EQ(a.mean_local_share, b.mean_local_share);
    EXPECT_EQ(a.mean_long_range_share, b.mean_long_range_share);
    EXPECT_EQ(a.mean_control_share, b.mean_control_share);
  }
}

TEST(Runner, SharedSeedStreamGivesPairedDraws) {
  // Two cells with the same protocol/size and the same pinned seed_stream
  // must produce bit-identical replicate outcomes (identical graph, field
  // and protocol randomness); an auto-stream cell must not.
  Scenario scenario;
  scenario.name = "paired";
  scenario.replicates = 3;
  scenario.master_seed = 21;
  for (int i = 0; i < 3; ++i) {
    auto& cell = scenario.add(core::ProtocolKind::kBoydPairwise, 64);
    cell.options.eps = 1e-2;
    if (i < 2) cell.seed_stream = 0;
  }

  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(scenario);
  ASSERT_EQ(summary.cells.size(), 3u);
  for (std::uint32_t r = 0; r < scenario.replicates; ++r) {
    EXPECT_EQ(summary.cells[0].raw[r].seed, summary.cells[1].raw[r].seed);
    EXPECT_EQ(summary.cells[0].raw[r].transmissions.total(),
              summary.cells[1].raw[r].transmissions.total());
    EXPECT_NE(summary.cells[0].raw[r].seed, summary.cells[2].raw[r].seed);
  }
  EXPECT_EQ(summary.cells[0].median_tx, summary.cells[1].median_tx);
}

TEST(Runner, RunReplicateMatchesRunnerRaw) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 3;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(scenario);
  const auto direct = run_replicate(
      scenario.cells[1], replicate_seed(scenario.master_seed, 1, 0));
  const auto& via_runner = summary.cells[1].raw[0];
  EXPECT_EQ(direct.converged, via_runner.converged);
  EXPECT_EQ(direct.transmissions.total(), via_runner.transmissions.total());
  EXPECT_EQ(direct.final_error, via_runner.final_error);
}

TEST(Runner, ProgressCallbackFiresOncePerReplicate) {
  const auto scenario = tiny_scenario(3);
  std::atomic<int> calls{0};
  RunnerOptions options;
  options.threads = 2;
  options.progress = [&](const Cell&, std::size_t, std::uint32_t,
                         const ReplicateResult&) { calls.fetch_add(1); };
  Runner(options).run(scenario);
  EXPECT_EQ(calls.load(),
            static_cast<int>(scenario.cells.size() * scenario.replicates));
}

TEST(Runner, ProgressReportsSlotIdentity) {
  const auto scenario = tiny_scenario(2);
  std::set<std::pair<std::size_t, std::uint32_t>> slots;
  RunnerOptions options;
  options.threads = 2;
  options.progress = [&](const Cell& cell, std::size_t cell_index,
                         std::uint32_t replicate, const ReplicateResult&) {
    EXPECT_EQ(scenario.cells[cell_index].label, cell.label);
    slots.emplace(cell_index, replicate);
  };
  Runner(options).run(scenario);
  // Every (cell, replicate) pair reported exactly once.
  EXPECT_EQ(slots.size(), scenario.cells.size() * scenario.replicates);
}

TEST(Runner, MemoryBudgetGatesSchedulingNotResults) {
  auto scenario = tiny_scenario(3);
  // Hints chosen so the budget admits at most one hinted replicate at a
  // time — including one hint LARGER than the whole budget, which must
  // degrade to run-alone rather than deadlock.
  scenario.cells[0].mem_hint_bytes = 600;
  scenario.cells[1].mem_hint_bytes = 1500;  // > budget: runs alone
  scenario.cells[2].mem_hint_bytes = 900;
  RunnerOptions ungated;
  ungated.threads = 3;
  const auto baseline = Runner(ungated).run(scenario);

  RunnerOptions gated = ungated;
  gated.memory_budget_bytes = 1000;
  const auto summary = Runner(gated).run(scenario);

  ASSERT_EQ(summary.cells.size(), baseline.cells.size());
  for (std::size_t c = 0; c < summary.cells.size(); ++c) {
    EXPECT_EQ(summary.cells[c].converged, baseline.cells[c].converged);
    EXPECT_EQ(summary.cells[c].median_tx, baseline.cells[c].median_tx);
    EXPECT_EQ(summary.cells[c].q25_tx, baseline.cells[c].q25_tx);
    EXPECT_EQ(summary.cells[c].q75_tx, baseline.cells[c].q75_tx);
  }
}

// --------------------------------------------------------------- metrics ----

/// Synthetic probe: deterministic metrics from (cell, seed) only.
Scenario metric_scenario(std::uint32_t replicates) {
  Scenario scenario;
  scenario.name = "metric-probe";
  scenario.replicates = replicates;
  scenario.master_seed = 13;
  for (const std::size_t n : {8, 16, 24}) {
    auto& cell = scenario.add("probe n=" + std::to_string(n),
                              core::ProtocolKind::kBoydPairwise, n);
    cell.probe = "synthetic";
    cell.params["scale"] = 2.0;
    cell.trial = [](const Cell& c, std::uint64_t seed) {
      ReplicateResult result;
      result.converged = true;
      result.metrics["value"] =
          c.param("scale") * static_cast<double>(seed % 97);
      result.metrics["n_copy"] = static_cast<double>(c.n);
      return result;
    };
  }
  return scenario;
}

TEST(Metrics, CellParamLookupFallsBack) {
  Cell cell;
  cell.params["x"] = 1.5;
  EXPECT_DOUBLE_EQ(cell.param("x"), 1.5);
  EXPECT_DOUBLE_EQ(cell.param("missing", -2.0), -2.0);
}

TEST(Metrics, AggregatesEveryKeyWithOrderStatistics) {
  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(metric_scenario(5));

  ASSERT_EQ(summary.cells.size(), 3u);
  for (const auto& cs : summary.cells) {
    ASSERT_EQ(cs.metrics.count("value"), 1u);
    ASSERT_EQ(cs.metrics.count("n_copy"), 1u);
    const auto& value = cs.metrics.at("value");
    EXPECT_EQ(value.count, 5u);
    // Recompute the aggregate from the raw replicates.
    double sum = 0.0;
    double lo = 1e300;
    double hi = -1e300;
    for (const auto& rr : cs.raw) {
      const double v = rr.metrics.at("value");
      sum += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_DOUBLE_EQ(value.mean, sum / 5.0);
    EXPECT_DOUBLE_EQ(value.min, lo);
    EXPECT_DOUBLE_EQ(value.max, hi);
    EXPECT_GE(value.median, lo);
    EXPECT_LE(value.median, hi);
    EXPECT_DOUBLE_EQ(cs.metrics.at("n_copy").mean,
                     static_cast<double>(cs.cell.n));
    EXPECT_DOUBLE_EQ(cs.metric_mean("n_copy"),
                     static_cast<double>(cs.cell.n));
    EXPECT_DOUBLE_EQ(cs.metric_mean("absent", -1.0), -1.0);
    // Probes always converge: the measurement itself is the outcome.
    EXPECT_EQ(cs.converged, 5u);
  }
}

TEST(Metrics, AggregationIsBitIdenticalAcrossThreadCounts) {
  const auto scenario = metric_scenario(4);

  RunnerOptions serial;
  serial.threads = 1;
  const auto one = Runner(serial).run(scenario);

  RunnerOptions parallel;
  parallel.threads = 4;
  const auto four = Runner(parallel).run(scenario);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    const auto& a = one.cells[i].metrics;
    const auto& b = four.cells[i].metrics;
    ASSERT_EQ(a.size(), b.size());
    for (const auto& [key, ms] : a) {
      ASSERT_EQ(b.count(key), 1u) << key;
      const auto& other = b.at(key);
      EXPECT_EQ(ms.count, other.count) << key;
      // Bit-identical, not approximately equal.
      EXPECT_EQ(ms.mean, other.mean) << key;
      EXPECT_EQ(ms.median, other.median) << key;
      EXPECT_EQ(ms.q95, other.q95) << key;
      EXPECT_EQ(ms.min, other.min) << key;
      EXPECT_EQ(ms.max, other.max) << key;
    }
  }
}

TEST(Metrics, ProbeQuickScenarioIsBitIdenticalAcrossThreadCounts) {
  // End-to-end over a real probe: E7 quick builds fast graphs only.
  register_builtin_scenarios();
  auto scenario = ScenarioRegistry::instance().make("e7-connectivity-quick");
  scenario.replicates = 3;

  RunnerOptions serial;
  serial.threads = 1;
  const auto one = Runner(serial).run(scenario);
  RunnerOptions parallel;
  parallel.threads = 4;
  const auto four = Runner(parallel).run(scenario);

  ASSERT_EQ(one.cells.size(), four.cells.size());
  for (std::size_t i = 0; i < one.cells.size(); ++i) {
    for (const auto& [key, ms] : one.cells[i].metrics) {
      EXPECT_EQ(ms.mean, four.cells[i].metrics.at(key).mean) << key;
      EXPECT_EQ(ms.q95, four.cells[i].metrics.at(key).q95) << key;
    }
  }
}

TEST(Metrics, PairedProbeCellsShareDeployments) {
  // E9 pins rejection on/off to one seed stream per size: replicate k of
  // both cells must draw the same seed (same graph, same draw sequence).
  const auto scenario = make_e9_rejection({64}, 50, 1.2, 2, 7);
  RunnerOptions options;
  options.threads = 2;
  options.keep_replicates = true;
  const auto summary = Runner(options).run(scenario);
  ASSERT_EQ(summary.cells.size(), 2u);
  for (std::uint32_t r = 0; r < scenario.replicates; ++r) {
    EXPECT_EQ(summary.cells[0].raw[r].seed, summary.cells[1].raw[r].seed);
  }
  // With sampling off only self-targets count as rejections, so the on
  // cell's rejection rate dominates the off cell's.
  EXPECT_GE(summary.cells[1].metric_mean("rejects_per_draw"),
            summary.cells[0].metric_mean("rejects_per_draw"));
}

TEST(Metrics, HorizonCellsExtendTheSameTrajectory) {
  // E1's horizon family shares a stream: the t=2n cell's mean norm must
  // exceed the t=10n cell's (same trajectories observed earlier), and the
  // contraction ratio must stay near or below 1.
  const auto scenario = make_e1_contraction({32}, 12, 3);
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(scenario);
  // 1 size x 3 alpha modes x 5 horizons.
  ASSERT_EQ(summary.cells.size(), 15u);
  const auto& first = summary.cells[0];   // paper mode, t=2n
  const auto& last = summary.cells[4];    // paper mode, t=10n
  EXPECT_EQ(first.cell.seed_stream, last.cell.seed_stream);
  EXPECT_GT(first.metric_mean("norm_sq"), last.metric_mean("norm_sq"));
  EXPECT_GT(last.metric_mean("bound"), 0.0);
}

// ----------------------------------------------------------------- sinks ----

TEST(Sinks, CsvSinkWritesHeaderOnceAndOneRowPerCell) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(scenario);

  std::ostringstream out;
  CsvSink sink(out);
  sink.write(summary);
  sink.write(summary);  // appending must not repeat the header

  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 1 + 2 * summary.cells.size());
  EXPECT_EQ(text.find("scenario,cell,protocol,n"), 0u);
  EXPECT_NE(text.find("tiny,boyd,boyd,64"), std::string::npos);
}

TEST(Sinks, JsonLinesSinkEmitsOneObjectPerCell) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(scenario);

  std::ostringstream out;
  JsonLinesSink(out).write(summary);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, summary.cells.size());
  EXPECT_NE(text.find("\"scenario\":\"tiny\""), std::string::npos);
  EXPECT_NE(text.find("\"protocol\":\"dimakis\""), std::string::npos);
}

TEST(Sinks, CsvSinkAppendsMetricColumnsInSortedKeyOrder) {
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(metric_scenario(3));

  std::ostringstream out;
  CsvSink sink(out);
  sink.write(summary);
  const std::string text = out.str();
  const std::string header = text.substr(0, text.find('\n'));
  // Base columns, then param_<key>, then the five order statistics per
  // metric key, sorted by key.
  EXPECT_NE(header.find("scenario,cell,protocol,n"), std::string::npos);
  EXPECT_NE(header.find("param_scale"), std::string::npos);
  EXPECT_NE(header.find(
                "n_copy_mean,n_copy_median,n_copy_q95,n_copy_min,"
                "n_copy_max,value_mean,value_median,value_q95,value_min,"
                "value_max"),
            std::string::npos);
  // Probe cells report the probe name in the protocol column.
  EXPECT_NE(text.find("probe n=8,synthetic,8"), std::string::npos);
}

TEST(Sinks, JsonLinesSinkEmitsMetricsObject) {
  RunnerOptions options;
  options.threads = 2;
  const auto summary = Runner(options).run(metric_scenario(3));

  std::ostringstream out;
  JsonLinesSink(out).write(summary);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"protocol\":\"synthetic\""), std::string::npos);
  EXPECT_NE(text.find("\"params\":{\"scale\":2}"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(text.find("\"value\":{\"count\":3,\"mean\":"),
            std::string::npos);
  EXPECT_NE(text.find("\"q95\":"), std::string::npos);
}

TEST(Sinks, JsonLinesReplicateRecordsStreamOnePerReplicate) {
  const auto scenario = tiny_scenario(2);
  std::ostringstream out;
  JsonLinesSink sink(out);
  RunnerOptions options;
  options.threads = 2;
  options.progress = [&](const Cell& cell, std::size_t cell_index,
                         std::uint32_t replicate,
                         const ReplicateResult& result) {
    sink.write_replicate(scenario.name, scenario.master_seed, cell,
                         cell_index, replicate, result);
  };
  const auto summary = Runner(options).run(scenario);
  sink.write(summary);  // cell lines interleave fine after the records

  const std::string text = out.str();
  std::size_t records = 0;
  std::size_t pos = 0;
  while ((pos = text.find("{\"record\":\"replicate\"", pos)) !=
         std::string::npos) {
    ++records;
    ++pos;
  }
  EXPECT_EQ(records, scenario.cells.size() * scenario.replicates);
  // Each record carries the resume identity and the outcome.
  EXPECT_NE(text.find("\"cell_index\":"), std::string::npos);
  EXPECT_NE(text.find("\"replicate\":"), std::string::npos);
  EXPECT_NE(text.find("\"master_seed\":7"), std::string::npos);
  EXPECT_NE(text.find("\"transmissions\":"), std::string::npos);
  // The per-cell summary lines still follow.
  EXPECT_NE(text.find("\"scenario\":\"tiny\",\"cell\":\"boyd\""),
            std::string::npos);
}

TEST(Sinks, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

// --------------------------------------------------------- resume & shard ----

/// Renders a summary through the CSV sink: byte equality here IS the
/// "bit-identical aggregates" acceptance criterion (every aggregate double
/// is printed with 17 significant digits).
std::string to_csv(const SweepSummary& summary) {
  std::ostringstream out;
  CsvSink sink(out);
  sink.write(summary);
  return out.str();
}

/// Runs `scenario` streaming replicate records, returning (summary, text
/// of the record file).
std::pair<SweepSummary, std::string> run_streaming(
    const Scenario& scenario, unsigned threads, std::uint32_t shard_index = 0,
    std::uint32_t shard_count = 1) {
  std::ostringstream records;
  JsonLinesSink sink(records);
  RunnerOptions options;
  options.threads = threads;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  options.progress = [&](const Cell& cell, std::size_t cell_index,
                         std::uint32_t replicate,
                         const ReplicateResult& result) {
    sink.write_replicate(scenario.name, scenario.master_seed, cell,
                         cell_index, replicate, result);
  };
  auto summary = Runner(options).run(scenario);
  return {std::move(summary), records.str()};
}

std::shared_ptr<Checkpoint> checkpoint_from(const Scenario& scenario,
                                            const std::string& text) {
  auto checkpoint =
      std::make_shared<Checkpoint>(scenario.name, scenario.master_seed);
  std::istringstream in(text);
  checkpoint->load(in);
  return checkpoint;
}

TEST(Resume, CrashResumeRoundTripIsBitIdenticalAtTwoThreadCounts) {
  const auto scenario = tiny_scenario(4);
  for (const unsigned threads : {1u, 3u}) {
    const auto [clean, full] = run_streaming(scenario, threads);
    const std::string clean_csv = to_csv(clean);
    const std::size_t total_tasks =
        scenario.cells.size() * scenario.replicates;

    // Truncate the record file as a SIGKILL would: nothing written yet,
    // a record boundary, and mid-record (torn tail).
    const std::size_t boundary = full.find('\n', full.size() / 3) + 1;
    const std::size_t mid_record = full.find('\n', full.size() / 2) + 20;
    for (const std::size_t cut :
         {std::size_t{0}, boundary, mid_record, full.size()}) {
      const auto checkpoint =
          checkpoint_from(scenario, full.substr(0, cut));
      RunnerOptions options;
      options.threads = threads;
      options.resume_from = checkpoint;
      const auto resumed = Runner(options).run(scenario);

      EXPECT_EQ(resumed.resumed_replicates, checkpoint->size())
          << "cut=" << cut;
      EXPECT_EQ(resumed.executed_replicates,
                total_tasks - checkpoint->size())
          << "cut=" << cut;
      // The acceptance criterion: a killed-and-resumed sweep emits the
      // same CSV bytes as the uninterrupted run.
      EXPECT_EQ(to_csv(resumed), clean_csv)
          << "threads=" << threads << " cut=" << cut;
    }
  }
}

TEST(Resume, ProbeMetricsSurviveTheRoundTrip) {
  // Metric maps (the probe figures' payload) must re-ingest bit-identically
  // too, not just transmission aggregates.
  const auto scenario = metric_scenario(5);
  const auto [clean, full] = run_streaming(scenario, 2);
  const std::size_t cut = full.find('\n', full.size() / 2) + 1;
  const auto checkpoint = checkpoint_from(scenario, full.substr(0, cut));
  ASSERT_GT(checkpoint->size(), 0u);

  RunnerOptions options;
  options.threads = 2;
  options.resume_from = checkpoint;
  const auto resumed = Runner(options).run(scenario);
  EXPECT_EQ(to_csv(resumed), to_csv(clean));
  ASSERT_EQ(resumed.cells.size(), clean.cells.size());
  for (std::size_t c = 0; c < clean.cells.size(); ++c) {
    for (const auto& [key, ms] : clean.cells[c].metrics) {
      const auto& other = resumed.cells[c].metrics.at(key);
      EXPECT_EQ(ms.mean, other.mean) << key;
      EXPECT_EQ(ms.median, other.median) << key;
      EXPECT_EQ(ms.q95, other.q95) << key;
    }
  }
}

TEST(Resume, ResumedReplicatesDoNotRefireProgress) {
  const auto scenario = tiny_scenario(3);
  const auto [clean, full] = run_streaming(scenario, 2);
  const auto checkpoint = checkpoint_from(scenario, full);

  std::atomic<int> calls{0};
  RunnerOptions options;
  options.threads = 2;
  options.resume_from = checkpoint;
  options.progress = [&](const Cell&, std::size_t, std::uint32_t,
                         const ReplicateResult&) { calls.fetch_add(1); };
  const auto resumed = Runner(options).run(scenario);
  // Everything was already on disk: nothing re-runs, nothing re-streams.
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(resumed.executed_replicates, 0u);
  EXPECT_EQ(resumed.resumed_replicates,
            scenario.cells.size() * scenario.replicates);
}

TEST(Resume, RejectsCheckpointForADifferentSweep) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 1;
  options.resume_from =
      std::make_shared<Checkpoint>("other-scenario", scenario.master_seed);
  EXPECT_THROW(Runner(options).run(scenario), ArgumentError);

  RunnerOptions wrong_seed;
  wrong_seed.threads = 1;
  wrong_seed.resume_from =
      std::make_shared<Checkpoint>(scenario.name, scenario.master_seed + 1);
  EXPECT_THROW(Runner(wrong_seed).run(scenario), ArgumentError);
}

TEST(Resume, RejectsSeedMismatchFromAnEditedScenario) {
  const auto scenario = tiny_scenario(2);
  // A record whose key exists but whose seed disagrees with the scenario's
  // seed-stream: the checkpoint belongs to a different cell layout.
  std::ostringstream out;
  JsonLinesSink sink(out);
  ReplicateResult doctored;
  doctored.seed = 999;  // never a replicate_seed(7, 0, 0)
  doctored.converged = true;
  doctored.final_error = 0.5;
  sink.write_replicate(scenario.name, scenario.master_seed,
                       scenario.cells[0], 0, 0, doctored);
  RunnerOptions options;
  options.threads = 1;
  options.resume_from = checkpoint_from(scenario, out.str());
  EXPECT_THROW(Runner(options).run(scenario), ArgumentError);
}

TEST(Resume, ThrowingProgressSinkAbortsTheRun) {
  // Satellite regression: the record write happens BEFORE a replicate is
  // marked complete, so a sink failure must surface as an exception from
  // Runner::run — never a summary that silently claims the work.
  const auto scenario = tiny_scenario(2);
  std::ostringstream out;
  JsonLinesSink sink(out);
  std::atomic<int> calls{0};
  RunnerOptions options;
  options.threads = 2;
  options.progress = [&](const Cell& cell, std::size_t cell_index,
                         std::uint32_t replicate,
                         const ReplicateResult& result) {
    if (calls.fetch_add(1) == 2) {
      out.setstate(std::ios::badbit);  // disk full from here on
    }
    sink.write_replicate(scenario.name, scenario.master_seed, cell,
                         cell_index, replicate, result);
  };
  EXPECT_THROW(Runner(options).run(scenario), IoError);
  // Whatever DID reach the stream before the failure is a valid partial
  // checkpoint a resume can pick up — the flushed-record invariant.  The
  // first two progress calls wrote records; the third found the stream
  // dead and threw before claiming its replicate.
  out.clear();
  const auto checkpoint = checkpoint_from(scenario, out.str());
  EXPECT_EQ(checkpoint->size(), 2u);
}

TEST(Sharding, ShardsPartitionReplicatesExactlyAndSeedsMatchTheStream) {
  const auto scenario = tiny_scenario(5);
  const std::size_t total_tasks =
      scenario.cells.size() * scenario.replicates;
  for (const std::uint32_t k : {1u, 2u, 3u, 7u}) {
    std::set<std::pair<std::size_t, std::uint32_t>> seen;
    for (std::uint32_t shard = 0; shard < k; ++shard) {
      RunnerOptions options;
      options.threads = 2;
      options.shard_index = shard;
      options.shard_count = k;
      options.progress = [&](const Cell& cell, std::size_t cell_index,
                             std::uint32_t replicate,
                             const ReplicateResult& result) {
        // Disjoint: no other shard may have produced this slot.
        EXPECT_TRUE(seen.emplace(cell_index, replicate).second)
            << "k=" << k << " cell=" << cell_index << " rep=" << replicate;
        // Sharding must not bend the seed-stream: every shard draws the
        // seed the unsharded run would.
        const std::size_t stream = cell.seed_stream == kAutoSeedStream
                                       ? cell_index
                                       : cell.seed_stream;
        EXPECT_EQ(result.seed, replicate_seed(scenario.master_seed, stream,
                                              replicate));
      };
      const auto summary = Runner(options).run(scenario);
      std::uint32_t owned = 0;
      for (const auto& cs : summary.cells) owned += cs.replicates;
      EXPECT_EQ(owned, summary.executed_replicates) << "k=" << k;
    }
    // Covering: the shards produced every (cell, replicate) exactly once.
    EXPECT_EQ(seen.size(), total_tasks) << "k=" << k;
  }
}

TEST(Sharding, MergedShardFilesReproduceTheUnshardedRunBitIdentically) {
  const auto scenario = tiny_scenario(5);
  for (const unsigned threads : {1u, 3u}) {
    const auto [clean, unused] = run_streaming(scenario, threads);
    const std::string clean_csv = to_csv(clean);
    const auto ks = threads == 1 ? std::vector<std::uint32_t>{2}
                                 : std::vector<std::uint32_t>{2, 3, 7};
    for (const std::uint32_t k : ks) {
      auto merged = std::make_shared<Checkpoint>(scenario.name,
                                                 scenario.master_seed);
      for (std::uint32_t shard = 0; shard < k; ++shard) {
        const auto [summary, records] =
            run_streaming(scenario, threads, shard, k);
        EXPECT_EQ(summary.shard_index, shard);
        EXPECT_EQ(summary.shard_count, k);
        std::istringstream in(records);
        merged->load(in);
      }
      ASSERT_EQ(merged->size(),
                scenario.cells.size() * scenario.replicates);

      // The merge-aggregation path: resume from the folded shard files,
      // run nothing, aggregate — the summaries a single uninterrupted
      // single-process run would emit.
      RunnerOptions options;
      options.threads = threads;
      options.resume_from = merged;
      const auto folded = Runner(options).run(scenario);
      EXPECT_EQ(folded.executed_replicates, 0u);
      EXPECT_EQ(to_csv(folded), clean_csv)
          << "k=" << k << " threads=" << threads;
    }
  }
}

TEST(Sharding, RunnerValidatesShardCoordinates) {
  const auto scenario = tiny_scenario(2);
  RunnerOptions options;
  options.threads = 1;
  options.shard_count = 0;
  EXPECT_THROW(Runner(options).run(scenario), ArgumentError);
  options.shard_count = 2;
  options.shard_index = 2;
  EXPECT_THROW(Runner(options).run(scenario), ArgumentError);
}

TEST(Sharding, ShardResumedFromMergedFileRerunsNothing) {
  // A shard pointed at the full merged checkpoint must subtract completed
  // work from ITS OWN partition only — and end up with zero to execute.
  const auto scenario = tiny_scenario(4);
  const auto [clean, full] = run_streaming(scenario, 2);
  const auto checkpoint = checkpoint_from(scenario, full);
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    RunnerOptions options;
    options.threads = 2;
    options.shard_index = shard;
    options.shard_count = 2;
    options.resume_from = checkpoint;
    const auto summary = Runner(options).run(scenario);
    EXPECT_EQ(summary.executed_replicates, 0u);
    // Only the shard's own tasks are re-ingested into its partial view.
    EXPECT_EQ(summary.resumed_replicates,
              (scenario.cells.size() * scenario.replicates + 1 - shard) / 2);
  }
}

}  // namespace
}  // namespace geogossip::exp
