// Cross-module property suites: invariants that must hold across sweeps of
// deployments, seeds and configurations (TEST_P-style, per DESIGN.md §7).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/affine.hpp"
#include "core/convergence.hpp"
#include "core/multilevel.hpp"
#include "core/schedule.hpp"
#include "geometry/hierarchy.hpp"
#include "geometry/sampling.hpp"
#include "graph/connectivity.hpp"
#include "graph/geometric_graph.hpp"
#include "graph/radius.hpp"
#include "routing/greedy.hpp"
#include "sim/field.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace geogossip {
namespace {

using geometry::Vec2;
using graph::GeometricGraph;

// ------------------------------------------------- deployment robustness ----

enum class Deployment { kUniform, kJittered, kClustered };

std::vector<Vec2> deploy(Deployment kind, std::size_t n, Rng& rng) {
  switch (kind) {
    case Deployment::kUniform:
      return geometry::sample_unit_square(n, rng);
    case Deployment::kJittered:
      return geometry::sample_jittered_grid(n, geometry::Rect::unit_square(),
                                            rng);
    case Deployment::kClustered:
      return geometry::sample_clustered(n, geometry::Rect::unit_square(), 5,
                                        0.08, rng);
  }
  throw ArgumentError("bad deployment");
}

class DeploymentProperty : public ::testing::TestWithParam<Deployment> {};

TEST_P(DeploymentProperty, HierarchyInvariantsHoldForEveryDeployment) {
  Rng rng(1200 + static_cast<std::uint64_t>(GetParam()));
  const auto points = deploy(GetParam(), 700, rng);

  geometry::HierarchyConfig config;
  config.leaf_occupancy = 30.0;
  const geometry::PartitionHierarchy h(points, config);

  // (1) Every sensor is in exactly one leaf, and the leaf's rect holds it.
  std::vector<int> leaf_hits(points.size(), 0);
  for (const int leaf : h.leaves()) {
    for (const auto m : h.square(leaf).members) ++leaf_hits[m];
  }
  for (const int hits : leaf_hits) EXPECT_EQ(hits, 1);

  // (2) Areas telescope: children tile the parent exactly.
  for (std::size_t id = 0; id < h.square_count(); ++id) {
    const auto& sq = h.square(static_cast<int>(id));
    if (sq.is_leaf()) continue;
    double child_area = 0.0;
    for (const int child : sq.children) {
      child_area += h.square(child).rect.area();
    }
    EXPECT_NEAR(child_area, sq.rect.area(), 1e-12);
  }

  // (3) Expected occupancies telescope like areas.
  for (std::size_t id = 0; id < h.square_count(); ++id) {
    const auto& sq = h.square(static_cast<int>(id));
    EXPECT_NEAR(sq.expected_occupancy,
                static_cast<double>(points.size()) * sq.rect.area() /
                    h.square(h.root()).rect.area(),
                1e-6);
  }

  // (4) Actual occupancies telescope exactly.
  for (std::size_t id = 0; id < h.square_count(); ++id) {
    const auto& sq = h.square(static_cast<int>(id));
    if (sq.is_leaf()) continue;
    std::size_t total = 0;
    for (const int child : sq.children) {
      total += h.square(child).occupancy();
    }
    EXPECT_EQ(total, sq.occupancy());
  }
}

TEST_P(DeploymentProperty, BucketGridAgreesWithBruteForce) {
  Rng rng(1300 + static_cast<std::uint64_t>(GetParam()));
  const auto points = deploy(GetParam(), 400, rng);
  const geometry::BucketGrid index(points, geometry::Rect::unit_square(),
                                   0.09);
  for (int probe = 0; probe < 30; ++probe) {
    const Vec2 q{rng.next_double(), rng.next_double()};
    const auto nearest = index.nearest(q);
    ASSERT_TRUE(nearest.has_value());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_LE(geometry::distance_sq(points[*nearest], q),
                geometry::distance_sq(points[i], q) + 1e-15);
    }
  }
}

TEST_P(DeploymentProperty, RoutingNeverLoops) {
  Rng rng(1400 + static_cast<std::uint64_t>(GetParam()));
  auto points = deploy(GetParam(), 600, rng);
  const GeometricGraph g(std::move(points), 0.12);
  for (int trial = 0; trial < 60; ++trial) {
    const auto src =
        static_cast<graph::NodeId>(rng.below(g.node_count()));
    const auto dst = static_cast<graph::NodeId>(
        rng.below_excluding(g.node_count(), src));
    std::vector<graph::NodeId> trace;
    routing::RouteOptions options;
    options.trace = &trace;
    (void)routing::route_to_node(g, src, dst, options);
    // Strict distance decrease implies no node repeats.
    std::sort(trace.begin(), trace.end());
    EXPECT_EQ(std::adjacent_find(trace.begin(), trace.end()), trace.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, DeploymentProperty,
                         ::testing::Values(Deployment::kUniform,
                                           Deployment::kJittered,
                                           Deployment::kClustered),
                         [](const auto& info) {
                           switch (info.param) {
                             case Deployment::kUniform:
                               return "uniform";
                             case Deployment::kJittered:
                               return "jittered";
                             case Deployment::kClustered:
                               return "clustered";
                           }
                           return "?";
                         });

// ------------------------------------------------------- reproducibility ----

TEST(Reproducibility, MultilevelIsDeterministicGivenSeed) {
  const auto run_once = [] {
    Rng rng(4242);
    auto g = GeometricGraph::sample(1024, 1.2, rng);
    auto x0 = sim::gaussian_field(1024, rng);
    sim::center_and_normalize(x0);
    core::MultilevelConfig config;
    config.eps = 1e-2;
    core::MultilevelAffineGossip protocol(g, x0, rng, config);
    const auto result = protocol.run();
    return std::tuple{result.transmissions.total(), result.top_rounds,
                      result.final_error};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Reproducibility, TrialHarnessIsDeterministicGivenSeed) {
  const auto run_once = [] {
    Rng rng(777);
    auto g = GeometricGraph::sample(512, 1.2, rng);
    auto x0 = sim::gaussian_field(512, rng);
    sim::center_and_normalize(x0);
    core::TrialOptions options;
    options.eps = 3e-2;
    Rng trial_rng(778);
    const auto outcome = core::run_protocol_trial(
        core::ProtocolKind::kDimakisGeographic, g, x0, trial_rng, options);
    return outcome.transmissions.total();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------- long-run conservation ----

TEST(Conservation, MixedUpdateSequencePreservesSumToFpAccuracy) {
  // A long random interleaving of every update primitive the protocols
  // use must conserve the total mass to floating-point accuracy.
  Rng rng(1500);
  constexpr std::size_t kN = 256;
  std::vector<double> x(kN);
  for (auto& v : x) v = rng.uniform(-10.0, 10.0);
  const double sum0 = std::accumulate(x.begin(), x.end(), 0.0);

  // Non-convex jumps amplify pair differences (that is their point), so
  // the magnitudes grow along the run; bound the growth so doubles never
  // overflow and scale the FP tolerance to the attained magnitude.
  for (int step = 0; step < 20000; ++step) {
    const std::size_t i = rng.below(kN);
    const std::size_t j = rng.below_excluding(kN, i);
    switch (rng.below(4)) {
      case 0:  // convex average
        core::affine_pair_update(x[i], x[j], 0.5, 0.5);
        break;
      case 1:  // paper coefficients
        core::affine_pair_update(x[i], x[j], core::draw_alpha(rng),
                                 core::draw_alpha(rng));
        break;
      case 2:  // non-convex jump
        core::affine_jump_update(x[i], x[j], rng.uniform(1.0, 2.0));
        break;
      case 3: {  // mass-preserving perturbation pair
        const double nu = rng.uniform(-1e-3, 1e-3);
        x[i] += nu;
        x[j] -= nu;
        break;
      }
    }
  }
  const double sum1 = std::accumulate(x.begin(), x.end(), 0.0);
  double max_abs = 0.0;
  for (const double v : x) max_abs = std::max(max_abs, std::abs(v));
  ASSERT_TRUE(std::isfinite(max_abs));
  EXPECT_NEAR(sum1, sum0,
              1e-12 * static_cast<double>(kN) * max_abs + 1e-9);
}

// -------------------------------------------- radius / degree monotonics ----

class RadiusProperty : public ::testing::TestWithParam<double> {};

TEST_P(RadiusProperty, LargerRadiusNeverRemovesEdges) {
  const double multiplier = GetParam();
  Rng rng(1600);
  const auto points = geometry::sample_unit_square(300, rng);
  const GeometricGraph small(points, graph::paper_radius(300, multiplier));
  const GeometricGraph large(
      points, graph::paper_radius(300, multiplier * 1.5));
  EXPECT_GE(large.adjacency().edge_count(), small.adjacency().edge_count());
  for (graph::NodeId v = 0; v < 300; ++v) {
    for (const auto u : small.neighbors(v)) {
      EXPECT_TRUE(large.adjacency().has_edge(v, u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Multipliers, RadiusProperty,
                         ::testing::Values(0.6, 1.0, 1.4));

// -------------------------------------------------- engine error metrics ----

TEST(ErrorMetric, InvariantUnderConstantShift) {
  // deviation_norm measures distance to the mean: adding a constant to
  // every sensor must not change it.
  std::vector<double> x{1.0, -2.0, 3.0, 4.5};
  const double base = sim::deviation_norm(x);
  for (auto& v : x) v += 100.0;
  EXPECT_NEAR(sim::deviation_norm(x), base, 1e-9);
}

TEST(ErrorMetric, ScalesLinearly) {
  std::vector<double> x{1.0, -2.0, 3.0, 4.5};
  const double base = sim::deviation_norm(x);
  for (auto& v : x) v *= 3.0;
  EXPECT_NEAR(sim::deviation_norm(x), 3.0 * base, 1e-9);
}

// ------------------------------------------------------- schedule sanity ----

TEST(ScheduleSanity, PracticalRoundsGrowWithAccuracy) {
  const auto profile = core::compute_level_profile(65536, 48.0);
  const auto loose = core::make_practical_schedule(1e-2, 1.0, 10.0, profile);
  const auto tight = core::make_practical_schedule(1e-5, 1.0, 10.0, profile);
  for (std::size_t r = 0; r < profile.size(); ++r) {
    if (profile[r].fan_out == 0) continue;
    EXPECT_GT(tight.rounds[r], loose.rounds[r]);
  }
}

}  // namespace
}  // namespace geogossip
