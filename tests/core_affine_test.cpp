// Tests for the affine kernel, the K_n models (Lemma 1 / Corollary 1 /
// Lemma 2) and the closed-form E[A^T A] (experiments E1-E4's foundations).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/affine.hpp"
#include "core/complete_graph_model.hpp"
#include "core/expected_contraction.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace geogossip::core {
namespace {

// --------------------------------------------------------------- kernel ----

TEST(AffineKernel, MatchesPaperComponentwiseRule) {
  double xi = 2.0;
  double xj = -3.0;
  affine_pair_update(xi, xj, 0.4, 0.35);
  // x_i' = (1-a_i) x_i + a_j x_j ; x_j' = (1-a_j) x_j + a_i x_i.
  EXPECT_NEAR(xi, 0.6 * 2.0 + 0.35 * -3.0, 1e-15);
  EXPECT_NEAR(xj, 0.65 * -3.0 + 0.4 * 2.0, 1e-15);
}

TEST(AffineKernel, JumpFormEqualsEqualAlphaPair) {
  double xi = 1.5;
  double xj = 0.25;
  double yi = 1.5;
  double yj = 0.25;
  affine_jump_update(xi, xj, 12.8);
  affine_pair_update(yi, yj, 12.8, 12.8);
  EXPECT_NEAR(xi, yi, 1e-12);
  EXPECT_NEAR(xj, yj, 1e-12);
}

TEST(AffineKernel, ConvexHalfIsClassicalGossip) {
  double xi = 4.0;
  double xj = 2.0;
  affine_pair_update(xi, xj, 0.5, 0.5);
  EXPECT_DOUBLE_EQ(xi, 3.0);
  EXPECT_DOUBLE_EQ(xj, 3.0);
}

// Sum preservation holds for EVERY coefficient pair — including the
// non-convex Omega(sqrt(n)) gains the paper uses.
class AffineSumProperty
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(AffineSumProperty, SumIsExactlyPreserved) {
  const auto [ai, aj] = GetParam();
  Rng rng(500);
  for (int trial = 0; trial < 100; ++trial) {
    double xi = rng.uniform(-100.0, 100.0);
    double xj = rng.uniform(-100.0, 100.0);
    const double sum = xi + xj;
    affine_pair_update(xi, xj, ai, aj);
    EXPECT_NEAR(xi + xj, sum, 1e-10 * (1.0 + std::abs(sum)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoefficientPairs, AffineSumProperty,
    ::testing::Values(std::pair{0.5, 0.5}, std::pair{0.4, 0.35},
                      std::pair{1.0 / 3.0 + 1e-6, 0.5 - 1e-6},
                      std::pair{25.6, 25.6},     // beta = 2*64/5 node-level
                      std::pair{-0.2, 0.7},      // outside any safe range
                      std::pair{409.6, 409.6})); // beta = 2*1024/5

TEST(AffineHelpers, BetaAndRange) {
  EXPECT_DOUBLE_EQ(far_beta(100.0), 40.0);
  EXPECT_THROW(far_beta(0.0), ArgumentError);
  EXPECT_TRUE(alpha_in_paper_range(0.4));
  EXPECT_FALSE(alpha_in_paper_range(1.0 / 3.0));
  EXPECT_FALSE(alpha_in_paper_range(0.5));
  Rng rng(501);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(alpha_in_paper_range(draw_alpha(rng)));
  }
}

// ----------------------------------------------------------- K_n model ----

TEST(CompleteGraphModel, PreservesSumOverManySteps) {
  CompleteGraphConfig config;
  config.n = 64;
  Rng rng(502);
  std::vector<double> x0(64);
  for (auto& v : x0) v = rng.normal();
  const double sum0 = std::accumulate(x0.begin(), x0.end(), 0.0);
  CompleteGraphModel model(config, x0, rng);
  model.run(100000);
  double sum = 0.0;
  for (const double v : model.values()) sum += v;
  EXPECT_NEAR(sum, sum0, 1e-8);
}

TEST(CompleteGraphModel, AlphasRespectMode) {
  Rng rng(503);
  CompleteGraphConfig config;
  config.n = 32;
  config.alpha_mode = AlphaMode::kPaperFixed;
  const CompleteGraphModel paper(config, std::vector<double>(32, 0.0), rng);
  for (const double a : paper.alphas()) {
    EXPECT_TRUE(alpha_in_paper_range(a));
  }
  config.alpha_mode = AlphaMode::kConvexHalf;
  const CompleteGraphModel convex(config, std::vector<double>(32, 0.0), rng);
  for (const double a : convex.alphas()) EXPECT_DOUBLE_EQ(a, 0.5);
}

TEST(CompleteGraphModel, Lemma1ContractionHolds) {
  // Zero-sum start; the empirical mean of ||x(t)||^2 must sit below the
  // Lemma 1 bound (up to sampling noise at the tail).
  constexpr std::size_t kN = 64;
  CompleteGraphConfig config;
  config.n = kN;
  std::vector<double> x0(kN, 0.0);
  x0[0] = 1.0;
  x0[1] = -1.0;  // zero-sum spike pair, ||x0||^2 = 2

  const std::uint64_t steps = 8 * kN;
  const auto trajectory =
      mean_norm_trajectory(config, x0, steps, kN, 96, 504);
  ASSERT_GE(trajectory.size(), 3u);
  for (const auto& [t, mean_norm_sq] : trajectory) {
    if (t == 0) {
      EXPECT_NEAR(mean_norm_sq, 2.0, 1e-12);
      continue;
    }
    const double bound = 2.0 * lemma1_bound(kN, t);
    EXPECT_LT(mean_norm_sq, bound * 1.25)
        << "t=" << t << " mean=" << mean_norm_sq << " bound=" << bound;
  }
  // The trajectory contracts substantially overall.
  EXPECT_LT(trajectory.back().second, 0.2 * trajectory.front().second);
}

TEST(CompleteGraphModel, PerStepAlphaModeAlsoContracts) {
  constexpr std::size_t kN = 48;
  CompleteGraphConfig config;
  config.n = kN;
  config.alpha_mode = AlphaMode::kPaperPerStep;
  std::vector<double> x0(kN, 0.0);
  x0[0] = 1.0;
  x0[kN - 1] = -1.0;
  const auto trajectory =
      mean_norm_trajectory(config, x0, 6 * kN, 3 * kN, 48, 505);
  EXPECT_LT(trajectory.back().second, 0.4 * trajectory.front().second);
}

TEST(CompleteGraphModel, BoundsFormulas) {
  EXPECT_NEAR(lemma1_bound(10, 0), 1.0, 1e-15);
  EXPECT_NEAR(lemma1_bound(10, 20), std::pow(0.95, 20), 1e-12);
  EXPECT_DOUBLE_EQ(corollary_tail_bound(10, 0, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(corollary_tail_bound(10, 0, 0.1), 1.0);  // capped
  EXPECT_GT(lemma2_envelope(100, 0, 1.0, 1.0, 0.0), 1.0);
  EXPECT_NEAR(lemma2_failure_probability(10, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(lemma2_failure_probability(100, 2.0), 5e-4, 1e-15);
  EXPECT_THROW(lemma1_bound(1, 5), ArgumentError);
}

TEST(CompleteGraphModel, CorollaryTailHoldsEmpirically) {
  // P(||x(t)|| > eps ||x0||) at a t where the bound is informative.
  constexpr std::size_t kN = 32;
  constexpr double kEps = 0.5;
  const std::uint64_t t = 6 * kN;  // bound = eps^-2 (1-1/2n)^t ~ 0.15
  const double bound = corollary_tail_bound(kN, t, kEps);
  ASSERT_LT(bound, 0.5);

  CompleteGraphConfig config;
  config.n = kN;
  std::vector<double> x0(kN, 0.0);
  x0[0] = std::sqrt(0.5);
  x0[1] = -std::sqrt(0.5);  // unit norm
  int violations = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(derive_seed(506, trial));
    CompleteGraphModel model(config, x0, rng);
    model.run(t);
    if (model.relative_norm() > kEps) ++violations;
  }
  EXPECT_LT(static_cast<double>(violations) / kTrials, bound * 1.3);
}

TEST(CompleteGraphModel, Lemma2EnvelopeHoldsUnderNoise) {
  constexpr std::size_t kN = 48;
  constexpr double kNoise = 1e-4;
  constexpr double kA = 1.0;
  CompleteGraphConfig config;
  config.n = kN;
  config.noise_bound = kNoise;

  std::vector<double> x0(kN, 0.0);
  x0[0] = 1.0;
  x0[1] = -1.0;
  const double y0_norm = std::sqrt(2.0);

  const std::uint64_t t = 10 * kN;
  const double envelope = lemma2_envelope(kN, t, kA, y0_norm, kNoise);
  int violations = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(derive_seed(507, trial));
    CompleteGraphModel model(config, x0, rng);
    model.run(t);
    if (std::sqrt(model.norm_squared()) > envelope) ++violations;
  }
  // Allowed failure probability is 5/n^a; with slack for sampling noise.
  const double allowed = lemma2_failure_probability(kN, kA);
  EXPECT_LE(static_cast<double>(violations) / kTrials, allowed + 0.05);
}

TEST(CompleteGraphModel, NoiseFloorsTheError) {
  // With perturbations the norm cannot contract to zero: it stalls at a
  // noise floor — exactly why the paper needs eps_r to shrink per level.
  constexpr std::size_t kN = 32;
  CompleteGraphConfig config;
  config.n = kN;
  config.noise_bound = 1e-2;
  std::vector<double> x0(kN, 0.0);
  x0[0] = 1.0;
  x0[1] = -1.0;
  Rng rng(508);
  CompleteGraphModel model(config, x0, rng);
  model.run(200 * kN);
  EXPECT_GT(std::sqrt(model.norm_squared()), 1e-3);
  EXPECT_LT(std::sqrt(model.norm_squared()), 1.0);
}

TEST(CompleteGraphModel, Validation) {
  Rng rng(509);
  CompleteGraphConfig config;
  config.n = 1;
  EXPECT_THROW(CompleteGraphModel(config, {0.0}, rng), ArgumentError);
  config.n = 4;
  EXPECT_THROW(CompleteGraphModel(config, {0.0}, rng), ArgumentError);
  config.noise_bound = -1.0;
  EXPECT_THROW(CompleteGraphModel(config, std::vector<double>(4, 0.0), rng),
               ArgumentError);
}

// ----------------------------------------------------------- E[A^T A] ----

TEST(ExpectedContraction, ClosedFormMatchesMonteCarlo) {
  Rng rng(510);
  std::vector<double> alphas(24);
  for (auto& a : alphas) a = draw_alpha(rng);
  const auto closed = expected_update_gram(alphas);
  const auto sampled = monte_carlo_update_gram(alphas, 4'000'000, rng);
  EXPECT_LT(max_abs_difference(closed, sampled), 2e-3);
}

TEST(ExpectedContraction, RowsSumLikeDoublyStochasticOnAverage) {
  // 1 is a fixed direction of A^T in expectation: column sums of E[A^T A]
  // applied to 1 give back ... at least every row sums to <= 1 + O(1/n)
  // and the matrix is symmetric.
  Rng rng(511);
  std::vector<double> alphas(16);
  for (auto& a : alphas) a = draw_alpha(rng);
  const auto m = expected_update_gram(alphas);
  for (std::size_t r = 0; r < m.n; ++r) {
    for (std::size_t c = 0; c < m.n; ++c) {
      EXPECT_NEAR(m.at(r, c), m.at(c, r), 1e-15);
    }
  }
}

class SpectralBoundProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpectralBoundProperty, ContractionWithinLemma1Bound) {
  const std::size_t n = GetParam();
  Rng rng(512 + n);
  std::vector<double> alphas(n);
  for (auto& a : alphas) a = draw_alpha(rng);
  const auto m = expected_update_gram(alphas);
  const double contraction = contraction_factor_zero_sum(m, 600, rng);
  // Lemma 1's proof bound: <= 1 - 8/(9(n-1)) < 1 - 1/(2n).
  EXPECT_LE(contraction, lemma1_explicit_bound(n) + 1e-9);
  EXPECT_LE(contraction, 1.0 - 1.0 / (2.0 * static_cast<double>(n)) + 1e-9);
  EXPECT_GT(contraction, 0.5);  // sane scale
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpectralBoundProperty,
                         ::testing::Values(4, 8, 16, 64, 128));

TEST(ExpectedContraction, ConvexHalfContractsFastest) {
  // alpha = 1/2 zeroes the diagonal penalty; its contraction factor is the
  // best achievable by this update family.
  Rng rng(513);
  constexpr std::size_t kN = 32;
  const auto convex =
      expected_update_gram(std::vector<double>(kN, 0.5));
  std::vector<double> mixed(kN);
  for (auto& a : mixed) a = draw_alpha(rng);
  const auto paper = expected_update_gram(mixed);
  const double c_convex = contraction_factor_zero_sum(convex, 600, rng);
  const double c_paper = contraction_factor_zero_sum(paper, 600, rng);
  EXPECT_LE(c_convex, c_paper + 1e-6);
}

TEST(ExpectedContraction, EndpointAlphaStillContracts) {
  // alpha -> 1/3: the (1-2a)^2 = 1/9 diagonal term of the paper's proof.
  Rng rng(514);
  constexpr std::size_t kN = 24;
  const auto m = expected_update_gram(
      std::vector<double>(kN, 1.0 / 3.0 + 1e-9));
  const double contraction = contraction_factor_zero_sum(m, 600, rng);
  EXPECT_LT(contraction, 1.0);
  EXPECT_LE(contraction, lemma1_explicit_bound(kN) + 1e-6);
}

TEST(ExpectedContraction, Validation) {
  Rng rng(515);
  EXPECT_THROW(expected_update_gram({0.4}), ArgumentError);
  DenseMatrix m;
  m.n = 4;
  m.data.assign(16, 0.0);
  EXPECT_THROW(contraction_factor_zero_sum(m, 0, rng), ArgumentError);
  DenseMatrix other;
  other.n = 3;
  other.data.assign(9, 0.0);
  EXPECT_THROW(max_abs_difference(m, other), ArgumentError);
}

}  // namespace
}  // namespace geogossip::core
