// Tests for the bounded-retry helper (src/support/retry.hpp): attempt
// counting, the exponential backoff schedule with its cap, jitter bounds,
// the loud give-up, and immediate propagation of non-transient errors.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "support/check.hpp"
#include "support/retry.hpp"

namespace geogossip {
namespace {

/// Policy whose sleeps are recorded instead of slept, so tests assert the
/// schedule without wall-clock time.
RetryPolicy recording_policy(std::vector<double>* sleeps,
                             double jitter_fraction = 0.0) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 0.01;
  policy.multiplier = 2.0;
  policy.max_backoff_seconds = 0.05;
  policy.jitter_fraction = jitter_fraction;
  policy.sleeper = [sleeps](double seconds) { sleeps->push_back(seconds); };
  return policy;
}

TEST(Retry, FirstTrySuccessNeverSleeps) {
  std::vector<double> sleeps;
  int attempts = 0;
  retry_io(recording_policy(&sleeps), "op", [&] {
    ++attempts;
    return true;
  });
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(Retry, BacksOffExponentiallyUpToTheCap) {
  std::vector<double> sleeps;
  int attempts = 0;
  retry_io(recording_policy(&sleeps), "op", [&] {
    return ++attempts == 5;  // four transient failures, then success
  });
  EXPECT_EQ(attempts, 5);
  // 0.01, 0.02, 0.04, then capped at 0.05 — never the uncapped 0.08.
  ASSERT_EQ(sleeps.size(), 4u);
  EXPECT_DOUBLE_EQ(sleeps[0], 0.01);
  EXPECT_DOUBLE_EQ(sleeps[1], 0.02);
  EXPECT_DOUBLE_EQ(sleeps[2], 0.04);
  EXPECT_DOUBLE_EQ(sleeps[3], 0.05);
}

TEST(Retry, GivesUpLoudlyAfterMaxAttempts) {
  std::vector<double> sleeps;
  int attempts = 0;
  try {
    retry_io(recording_policy(&sleeps), "flaky-sink", [&] {
      ++attempts;
      return false;
    });
    FAIL() << "retry_io must throw after exhausting its attempts";
  } catch (const IoError& error) {
    EXPECT_NE(std::string(error.what()).find("flaky-sink"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("5 attempts"),
              std::string::npos);
  }
  EXPECT_EQ(attempts, 5);
  // No sleep after the final attempt: giving up is immediate.
  EXPECT_EQ(sleeps.size(), 4u);
}

TEST(Retry, JitterStaysWithinTheConfiguredBand) {
  std::vector<double> sleeps;
  auto policy = recording_policy(&sleeps, 0.25);
  policy.max_attempts = 2;
  for (int round = 0; round < 64; ++round) {
    int attempts = 0;
    retry_io(policy, "op", [&] { return ++attempts == 2; });
  }
  ASSERT_EQ(sleeps.size(), 64u);
  for (const double s : sleeps) {
    EXPECT_GE(s, 0.01 * 0.75);
    EXPECT_LE(s, 0.01 * 1.25);
  }
}

TEST(Retry, NonTransientExceptionsPropagateWithoutRetrying) {
  std::vector<double> sleeps;
  int attempts = 0;
  EXPECT_THROW(retry_io(recording_policy(&sleeps), "op",
                        [&]() -> bool {
                          ++attempts;
                          throw std::logic_error("permanent");
                        }),
               std::logic_error);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(Retry, OrLogVariantSwallowsTheGiveUp) {
  std::vector<double> sleeps;
  EXPECT_FALSE(
      retry_io_or_log(recording_policy(&sleeps), "op", [] { return false; }));
  EXPECT_TRUE(
      retry_io_or_log(recording_policy(&sleeps), "op", [] { return true; }));
}

TEST(Retry, RejectsAZeroAttemptPolicy) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_THROW(retry_io(policy, "op", [] { return true; }), ArgumentError);
}

}  // namespace
}  // namespace geogossip
