// Tests for the analysis module: bound curves, spectral-gap estimation,
// exponent fitting.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/exponent_fit.hpp"
#include "analysis/mixing.hpp"
#include "graph/geometric_graph.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace geogossip::analysis {
namespace {

// ---------------------------------------------------------------- bounds ----

TEST(Bounds, Lemma1SeriesDecaysGeometrically) {
  const std::vector<double> ts{0, 10, 20, 40};
  const auto series = lemma1_series(50, ts);
  ASSERT_EQ(series.ys.size(), 4u);
  EXPECT_DOUBLE_EQ(series.ys[0], 1.0);
  for (std::size_t i = 1; i < series.ys.size(); ++i) {
    EXPECT_LT(series.ys[i], series.ys[i - 1]);
  }
  EXPECT_NEAR(series.ys[1], std::pow(0.99, 10), 1e-12);
}

TEST(Bounds, TailSeriesCapsAtOne) {
  const auto series = corollary_tail_series(50, {0, 1000}, 0.1);
  EXPECT_DOUBLE_EQ(series.ys[0], 1.0);
  EXPECT_LT(series.ys[1], 1.0);
}

TEST(Bounds, Lemma2SeriesHasNoiseFloor) {
  const auto series = lemma2_series(64, {0, 1e5, 1e6}, 1.0, 1e-6);
  // At huge t the envelope approaches the floor n^(a/2) 8 sqrt(2) n^1.5 eps.
  const double floor = std::pow(64.0, 0.5) * 8.0 * std::sqrt(2.0) *
                       std::pow(64.0, 1.5) * 1e-6;
  EXPECT_NEAR(series.ys[2], floor, floor * 0.01);
  EXPECT_GT(series.ys[0], series.ys[2]);
}

TEST(Bounds, StepsToEpsilonMatchesDirectSolve) {
  const double t = lemma1_steps_to_epsilon(100, 1e-3, 1e-2);
  // Check the defining inequality at t and its violation slightly below.
  const double rho = 1.0 - 1.0 / 200.0;
  EXPECT_LE(std::pow(rho, t) / 1e-6, 1e-2 * 1.0001);
  EXPECT_GT(std::pow(rho, 0.9 * t) / 1e-6, 1e-2);
  // Linear in n (up to the log factor): 2x n -> ~2x steps.
  EXPECT_NEAR(lemma1_steps_to_epsilon(200, 1e-3, 1e-2) / t, 2.0, 0.02);
}

TEST(Bounds, PredictionSeriesOrdering) {
  // Boyd dominates Dimakis already at n = 10^4; the paper's
  // (log n/eps)^(log log n) factor keeps its curve above Dimakis' until
  // n ~ 10^9..10^10 at unit constants — the asymptotic win is real but the
  // crossover is far out (EXPERIMENTS.md E5 discussion).
  const std::vector<double> ns{1e4, 1e6, 1e8};
  const auto boyd = boyd_series(ns, 1e-3, 1.0);
  const auto dimakis = dimakis_series(ns, 1e-3, 1.0);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    EXPECT_GT(boyd.ys[i], dimakis.ys[i]);
  }
  const std::vector<double> far{1e10, 1e12, 1e14};
  const auto dimakis_far = dimakis_series(far, 1e-3, 1.0);
  const auto narayanan_far = narayanan_series(far, 1e-3, 1.0);
  for (std::size_t i = 0; i < far.size(); ++i) {
    EXPECT_GT(dimakis_far.ys[i], narayanan_far.ys[i]);
  }
}

// ---------------------------------------------------------------- mixing ----

graph::CsrGraph cycle_graph(std::uint32_t n) {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n});
  }
  return graph::CsrGraph::from_edges(n, edges);
}

graph::CsrGraph complete_graph(std::uint32_t n) {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return graph::CsrGraph::from_edges(n, edges);
}

TEST(Mixing, CompleteGraphHasNearUnitGap) {
  // K_n: natural-walk lambda_2 = -1/(n-1); the gap is ~1.
  Rng rng(800);
  const auto result = estimate_spectral_gap(complete_graph(40), 400, rng);
  EXPECT_NEAR(result.lambda2, -1.0 / 39.0, 0.02);
  EXPECT_GT(result.spectral_gap, 0.9);
}

TEST(Mixing, CycleGapMatchesCosineFormula) {
  // Cycle C_n: lambda_2 = cos(2 pi / n).
  Rng rng(801);
  constexpr std::uint32_t kN = 64;
  const auto result = estimate_spectral_gap(cycle_graph(kN), 4000, rng);
  EXPECT_NEAR(result.lambda2, std::cos(2.0 * std::numbers::pi / kN), 5e-3);
  EXPECT_GT(result.relaxation_time, 100.0);
}

TEST(Mixing, GrgRelaxationGrowsRoughlyLinearlyInN) {
  // T_relax ~ 1/r^2 ~ n / log n on G(n, r): quadrupling n should grow the
  // relaxation time by ~3-4x.
  Rng rng_a(802);
  Rng rng_b(803);
  const auto g_small = graph::GeometricGraph::sample(500, 2.0, rng_a);
  const auto g_large = graph::GeometricGraph::sample(2000, 2.0, rng_b);
  Rng rng_c(804);
  Rng rng_d(805);
  const auto small = estimate_spectral_gap(g_small.adjacency(), 3000, rng_c);
  const auto large = estimate_spectral_gap(g_large.adjacency(), 3000, rng_d);
  const double ratio = large.relaxation_time / small.relaxation_time;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 8.0);
}

TEST(Mixing, MixingTimeEstimateScalesWithLogEps) {
  SpectralGapResult gap;
  gap.relaxation_time = 10.0;
  EXPECT_NEAR(mixing_time_estimate(gap, 100, 1e-3) -
                  mixing_time_estimate(gap, 100, 1e-2),
              10.0 * std::log(10.0), 1e-9);
  EXPECT_THROW(mixing_time_estimate(gap, 100, 2.0), ArgumentError);
}

TEST(Mixing, RejectsIsolatedNodes) {
  Rng rng(806);
  const auto g = graph::CsrGraph::from_edges(3, {{0, 1}});
  EXPECT_THROW(estimate_spectral_gap(g, 10, rng), ArgumentError);
}

// ---------------------------------------------------------- exponent fit ----

TEST(ExponentFit, RecoversCleanPowerLaw) {
  std::vector<double> ns{1000, 2000, 4000, 8000, 16000};
  std::vector<double> medians;
  for (const double n : ns) medians.push_back(0.5 * std::pow(n, 1.5));
  const auto report = fit_scaling("test", ns, medians);
  EXPECT_NEAR(report.fit.exponent, 1.5, 1e-9);
  EXPECT_NE(report.to_string().find("test"), std::string::npos);
  EXPECT_THROW(fit_scaling("x", {1.0, 2.0}, {1.0, 2.0}), ArgumentError);
}

TEST(ExponentFit, CrossoverOfTwoLaws) {
  // 100 n^1.2 and 1 n^2 cross at n = 100^(1/0.8) ~ 316.2.
  stats::PowerLawFit slow;
  slow.exponent = 1.2;
  slow.coefficient = 100.0;
  stats::PowerLawFit fast;
  fast.exponent = 2.0;
  fast.coefficient = 1.0;
  const double n_cross = crossover_n(fast, slow);
  EXPECT_NEAR(n_cross, std::pow(100.0, 1.0 / 0.8), 0.5);
  // Same exponent -> no crossover.
  EXPECT_LT(crossover_n(slow, slow), 0.0);
}

}  // namespace
}  // namespace geogossip::analysis
