// Tests for the round-based multilevel affine gossip simulator — the
// accounting engine behind the headline scaling experiment (E5) and the
// ablations (E10).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/multilevel.hpp"
#include "graph/connectivity.hpp"
#include "graph/geometric_graph.hpp"
#include "sim/field.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace geogossip::core {
namespace {

using graph::GeometricGraph;

GeometricGraph make_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return GeometricGraph::sample(n, 2.0, rng);
}

std::vector<double> make_field(const GeometricGraph& g, Rng& rng) {
  auto x0 = sim::gaussian_field(g.node_count(), rng);
  sim::center_and_normalize(x0);
  return x0;
}

TEST(Multilevel, ConvergesOnModerateDeployment) {
  const auto g = make_graph(2048, 600);
  Rng rng(601);
  auto x0 = make_field(g, rng);

  MultilevelConfig config;
  config.eps = 1e-3;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();

  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.final_error, 1e-3);
  EXPECT_GT(result.top_rounds, 0u);
  EXPECT_GT(result.transmissions.total(), 0u);
}

TEST(Multilevel, ConservesTheSum) {
  const auto g = make_graph(1024, 602);
  Rng rng(603);
  auto x0 = make_field(g, rng);
  const double sum0 = std::accumulate(x0.begin(), x0.end(), 0.0);

  MultilevelConfig config;
  config.eps = 1e-3;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  (void)protocol.run();
  EXPECT_NEAR(protocol.value_sum(), sum0, 1e-7);
}

TEST(Multilevel, AllValuesNearTheMeanAfterConvergence) {
  const auto g = make_graph(1024, 604);
  Rng rng(605);
  std::vector<double> x0(g.node_count());
  for (auto& v : x0) v = rng.uniform(0.0, 20.0);
  const double mean0 = std::accumulate(x0.begin(), x0.end(), 0.0) /
                       static_cast<double>(x0.size());

  MultilevelConfig config;
  config.eps = 1e-4;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();
  ASSERT_TRUE(result.converged);
  for (const double v : protocol.values()) EXPECT_NEAR(v, mean0, 0.5);
}

TEST(Multilevel, OneLevelModeUsesDepthOne) {
  const auto g = make_graph(1024, 606);
  Rng rng(607);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 1e-2;
  config.max_depth = 1;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  EXPECT_EQ(protocol.hierarchy().levels(), 2);  // root + one split
  const auto result = protocol.run();
  EXPECT_TRUE(result.converged);
}

TEST(Multilevel, ChargesAllThreeCategories) {
  const auto g = make_graph(2048, 608);
  Rng rng(609);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 1e-2;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.transmissions[sim::TxCategory::kLocal], 0u);
  EXPECT_GT(result.transmissions[sim::TxCategory::kLongRange], 0u);
  EXPECT_GT(result.transmissions[sim::TxCategory::kControl], 0u);
}

TEST(Multilevel, ControlChargingCanBeDisabled) {
  const auto g = make_graph(1024, 610);
  Rng rng(611);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 1e-2;
  config.charge_control = false;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.transmissions[sim::TxCategory::kControl], 0u);
}

TEST(Multilevel, ConvexRepModeIsFarSlowerThanAffine) {
  // THE core claim of the paper in miniature: convex representative
  // averaging moves only O(1/m) of a square's mass per exchange, while the
  // affine jump moves Theta(1) of it.
  const auto g = make_graph(1024, 612);
  Rng rng_a(613);
  Rng rng_b(614);
  auto x0 = make_field(g, rng_a);

  MultilevelConfig affine;
  affine.eps = 3e-2;
  affine.max_depth = 1;
  MultilevelAffineGossip affine_protocol(g, x0, rng_a, affine);
  const auto affine_result = affine_protocol.run();

  MultilevelConfig convex = affine;
  convex.beta_mode = BetaMode::kConvexRep;
  // Convex mode needs a far larger round cap to converge at all.
  convex.max_top_rounds = 400'000;
  MultilevelAffineGossip convex_protocol(g, x0, rng_b, convex);
  const auto convex_result = convex_protocol.run();

  ASSERT_TRUE(affine_result.converged);
  if (convex_result.converged) {
    EXPECT_GT(convex_result.top_rounds, 5 * affine_result.top_rounds);
  } else {
    // Not converging within a 50x-larger budget makes the point, too.
    EXPECT_GT(convex_result.final_error, affine_result.final_error);
  }
}

TEST(Multilevel, HarmonicBetaModeAlsoConverges) {
  const auto g = make_graph(1024, 615);
  Rng rng(616);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 1e-2;
  config.beta_mode = BetaMode::kActualHarmonic;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();
  EXPECT_TRUE(result.converged);
  // Harmonic beta adapts to actual occupancy: fewer alpha-range violations
  // than the paper's fixed expected-occupancy gain would incur.
  EXPECT_LT(result.alpha_out_of_range, result.top_rounds);
}

TEST(Multilevel, QuadraticLeafModelChargesMore) {
  const auto g = make_graph(2048, 617);
  Rng rng_a(618);
  Rng rng_b(618);  // same seed: identical round sequence
  auto x0 = make_field(g, rng_a);
  rng_b = Rng(618);

  MultilevelConfig mixing;
  mixing.eps = 1e-2;
  mixing.leaf_cost = LeafCostModel::kGrgMixing;
  Rng rng1(619);
  MultilevelAffineGossip p1(g, x0, rng1, mixing);
  const auto r1 = p1.run();

  MultilevelConfig quadratic = mixing;
  quadratic.leaf_cost = LeafCostModel::kQuadratic;
  Rng rng2(619);
  MultilevelAffineGossip p2(g, x0, rng2, quadratic);
  const auto r2 = p2.run();

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_GT(r2.transmissions[sim::TxCategory::kLocal],
            r1.transmissions[sim::TxCategory::kLocal]);
}

TEST(Multilevel, MeasuredLeafModeConvergesAndCostsRealExchanges) {
  const auto g = make_graph(512, 620);
  Rng rng(621);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 1e-2;
  config.leaf_cost = LeafCostModel::kMeasured;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.transmissions[sim::TxCategory::kLocal], 0u);
}

TEST(Multilevel, LeafNoiseInjectionStillConverges) {
  // Lemma 2 in vivo: small imperfect-averaging noise does not break
  // convergence to a coarser epsilon.
  const auto g = make_graph(1024, 622);
  Rng rng(623);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 3e-2;
  config.leaf_noise = 1e-6;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();
  EXPECT_TRUE(result.converged);
}

TEST(Multilevel, LargeLeafNoiseFloorsTheError) {
  const auto g = make_graph(1024, 624);
  Rng rng(625);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 1e-6;  // unreachable under heavy noise
  config.leaf_noise = 1e-2;
  config.max_top_rounds = 3000;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();
  EXPECT_FALSE(result.converged);
  EXPECT_GT(result.final_error, 1e-6);
}

TEST(Multilevel, TraceIsRecordedWhenRequested) {
  const auto g = make_graph(1024, 626);
  Rng rng(627);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 1e-2;
  config.trace_every = 8;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  const auto result = protocol.run();
  ASSERT_TRUE(result.converged);
  ASSERT_GT(result.trace.size(), 1u);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].first, result.trace[i - 1].first);
  }
}

TEST(Multilevel, ConstantFieldConvergesImmediately) {
  const auto g = make_graph(256, 628);
  Rng rng(629);
  MultilevelConfig config;
  MultilevelAffineGossip protocol(
      g, std::vector<double>(g.node_count(), 7.0), rng, config);
  const auto result = protocol.run();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.top_rounds, 0u);
  EXPECT_EQ(result.transmissions.total(), 0u);
}

TEST(Multilevel, TinyDeploymentDegeneratesToLeafAveraging) {
  const auto g = make_graph(24, 630);  // below the leaf threshold
  Rng rng(631);
  auto x0 = make_field(g, rng);
  MultilevelConfig config;
  config.eps = 1e-3;
  MultilevelAffineGossip protocol(g, x0, rng, config);
  EXPECT_EQ(protocol.hierarchy().levels(), 1);
  const auto result = protocol.run();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.top_rounds, 0u);
}

TEST(Multilevel, OneLevelLocalShareGrowsWithN) {
  // §3's one-level protocol pays Theta(m (L/r)^2 log m) = Theta~(m^2 / log n)
  // per in-square averaging with m = sqrt(n): the local share of its bill
  // must grow with n — the paper's motivation for recursing.
  const auto local_share = [](std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    auto g = GeometricGraph::sample(n, 2.0, rng);
    auto x0 = sim::gaussian_field(n, rng);
    sim::center_and_normalize(x0);
    MultilevelConfig config;
    config.eps = 1e-2;
    config.max_depth = 1;
    MultilevelAffineGossip protocol(g, x0, rng, config);
    const auto result = protocol.run();
    EXPECT_TRUE(result.converged);
    return static_cast<double>(
               result.transmissions[sim::TxCategory::kLocal]) /
           static_cast<double>(result.transmissions.total());
  };
  EXPECT_GT(local_share(8192, 633), local_share(512, 632));
}

TEST(Multilevel, RecursionOverheadAtSimulableScaleIsDocumented) {
  // At simulable n the fan-out of depth >= 1 splits is SMALL (k ~ 4..16),
  // so the per-level round multiplier 2 c ln(k / eps_r) exceeds the k-fold
  // leaf shrinkage and full recursion costs MORE than one level — the
  // asymptotic regime needs k >> log(k/eps), i.e. n >> 10^6 (DESIGN.md §2,
  // EXPERIMENTS.md E10).  Pin that fact so a regression in either direction
  // is caught.
  const auto g = make_graph(2048, 632);
  Rng rng1(634);
  auto x0 = make_field(g, rng1);

  MultilevelConfig one_level;
  one_level.eps = 1e-2;
  one_level.max_depth = 1;
  Rng rng2(635);
  MultilevelAffineGossip p1(g, x0, rng2, one_level);
  const auto r1 = p1.run();

  MultilevelConfig multi = one_level;
  multi.max_depth = 12;
  Rng rng3(635);
  MultilevelAffineGossip p2(g, x0, rng3, multi);
  const auto r2 = p2.run();

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_GT(p2.hierarchy().levels(), p1.hierarchy().levels());
  EXPECT_GT(r2.transmissions.total(), r1.transmissions.total());
}

TEST(Multilevel, Validation) {
  const auto g = make_graph(64, 635);
  Rng rng(636);
  MultilevelConfig config;
  EXPECT_THROW(
      MultilevelAffineGossip(g, std::vector<double>(3, 0.0), rng, config),
      ArgumentError);
  config.eps = 0.0;
  EXPECT_THROW(MultilevelAffineGossip(
                   g, std::vector<double>(g.node_count(), 0.0), rng, config),
               ArgumentError);
}

}  // namespace
}  // namespace geogossip::core
