// Unit tests for the support module: RNG, checks, strings, CSV, CLI,
// logging, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"
#include "support/table.hpp"

namespace geogossip {
namespace {

// ---------------------------------------------------------------- check ----

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(GG_CHECK(1 + 1 == 2, "arithmetic"));
  EXPECT_NO_THROW(GG_CHECK_ARG(true, "ok"));
}

TEST(Check, FailingInvariantThrowsCheckError) {
  EXPECT_THROW(GG_CHECK(false, "boom"), CheckError);
}

TEST(Check, FailingArgumentThrowsArgumentError) {
  EXPECT_THROW(GG_CHECK_ARG(false, "bad arg"), ArgumentError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    GG_CHECK(2 < 1, "custom context");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng ----

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DeriveSeedDecorrelatesStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) seeds.insert(derive_seed(7, s));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsBoundsAndValidatesThem) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
  EXPECT_THROW(rng.uniform(1.0, 1.0), ArgumentError);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ArgumentError);
}

TEST(Rng, BelowCoversRangeUniformly) {
  Rng rng(5);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBuckets), 600);
  }
  EXPECT_THROW(rng.below(0), ArgumentError);
}

TEST(Rng, BelowExcludingNeverReturnsExcluded) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.below_excluding(7, 3);
    EXPECT_NE(v, 3u);
    EXPECT_LT(v, 7u);
  }
  EXPECT_THROW(rng.below_excluding(1, 0), ArgumentError);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCasesAndRate) {
  Rng rng(8);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(9);
  double total = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) total += rng.exponential(4.0);
  EXPECT_NEAR(total / kDraws, 0.25, 0.005);
  EXPECT_THROW(rng.exponential(0.0), ArgumentError);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.02);
}

TEST(Rng, PoissonMeanSmallAndLargeRegimes) {
  Rng rng(11);
  for (const double mean : {0.5, 8.0, 200.0}) {
    double total = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      total += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(total / kDraws, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(Rng(1).poisson(0.0), 0u);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(12);
  const auto sample = rng.sample_without_replacement(100, 100);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ArgumentError);
}

TEST(Rng, SampleWithoutReplacementSubset) {
  Rng rng(13);
  for (int round = 0; round < 50; ++round) {
    const auto sample = rng.sample_without_replacement(50, 7);
    std::set<std::uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (const auto v : unique) EXPECT_LT(v, 50u);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(14);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------- string_util ----

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, TrimWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringUtil, FormatHelpers) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
  EXPECT_EQ(format_si(1234.0), "1.23k");
  EXPECT_EQ(format_si(12.0), "12");
  EXPECT_EQ(format_si(5.1e7), "51.0M");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(7), "7");
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double(" 2.5 "), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3"), -1e-3);
  EXPECT_THROW(parse_double("abc"), ArgumentError);
  EXPECT_THROW(parse_double("1.5x"), ArgumentError);
  EXPECT_THROW(parse_double(""), ArgumentError);
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_THROW(parse_int("4.2"), ArgumentError);
  EXPECT_THROW(parse_int(""), ArgumentError);
}

TEST(StringUtil, ParseBool) {
  EXPECT_TRUE(parse_bool("true"));
  EXPECT_TRUE(parse_bool("YES"));
  EXPECT_TRUE(parse_bool("1"));
  EXPECT_FALSE(parse_bool("false"));
  EXPECT_FALSE(parse_bool("No"));
  EXPECT_THROW(parse_bool("maybe"), ArgumentError);
}

// -------------------------------------------------------------- logging ----

TEST(Logging, LevelFiltering) {
  std::ostringstream sink;
  LogConfig::set_sink(sink);
  LogConfig::set_level(LogLevel::kWarn);
  log_info("hidden ", 1);
  log_warn("visible ", 2);
  LogConfig::set_level(LogLevel::kWarn);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible 2"), std::string::npos);
  LogConfig::set_sink(std::cerr);
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

// ------------------------------------------------------------------ csv ----

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"n", "value"});
  csv.field(std::int64_t{10}).field(3.5).end_row();
  csv.row({"20", "x,y"});
  EXPECT_EQ(out.str(), "n,value\n10,3.5\n20,\"x,y\"\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EnforcesDiscipline) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_THROW(csv.field("premature"), CheckError);  // row before header
  csv.header({"a", "b"});
  EXPECT_THROW(csv.header({"again"}), CheckError);
  csv.field("1");
  EXPECT_THROW(csv.end_row(), CheckError);  // width mismatch
}

// ------------------------------------------------------------------ cli ----

TEST(Cli, ParsesAllValueForms) {
  std::int64_t n = 10;
  double eps = 0.5;
  std::string name = "default";
  bool verbose = false;
  ArgParser parser("prog", "test");
  parser.add_flag("n", &n, "count");
  parser.add_flag("eps", &eps, "accuracy");
  parser.add_flag("name", &name, "label");
  parser.add_flag("verbose", &verbose, "chatty");

  const char* argv[] = {"prog", "--n=42", "--eps", "0.125",
                        "--name=run1", "--verbose", "positional"};
  ASSERT_EQ(parser.parse(7, argv), ParseResult::kOk);
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(eps, 0.125);
  EXPECT_EQ(name, "run1");
  EXPECT_TRUE(verbose);
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "positional");
}

TEST(Cli, BoolExplicitValueForm) {
  bool flag = true;
  ArgParser parser("prog", "test");
  parser.add_flag("flag", &flag, "a bool");
  const char* argv[] = {"prog", "--flag=false"};
  ASSERT_EQ(parser.parse(2, argv), ParseResult::kOk);
  EXPECT_FALSE(flag);
}

TEST(Cli, RejectsUnknownFlagAndMissingValueWithKError) {
  std::int64_t n = 0;
  ArgParser parser("prog", "test");
  parser.add_flag("n", &n, "count");
  const char* bad[] = {"prog", "--bogus=1"};
  testing::internal::CaptureStderr();
  EXPECT_EQ(parser.parse(2, bad), ParseResult::kError);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("--bogus"),
            std::string::npos);
  const char* missing[] = {"prog", "--n"};
  testing::internal::CaptureStderr();
  EXPECT_EQ(parser.parse(2, missing), ParseResult::kError);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("expects a value"),
            std::string::npos);
  const char* malformed[] = {"prog", "--n=abc"};
  testing::internal::CaptureStderr();
  EXPECT_EQ(parser.parse(2, malformed), ParseResult::kError);
  testing::internal::GetCapturedStderr();
}

TEST(Cli, ExitCodesDistinguishHelpFromError) {
  // --help is a successful run; a typo must fail the process so CI smoke
  // runs cannot silently pass on malformed command lines.
  EXPECT_EQ(parse_exit_code(ParseResult::kHelp), 0);
  EXPECT_EQ(parse_exit_code(ParseResult::kError), 1);
  EXPECT_EQ(parse_exit_code(ParseResult::kOk), 0);
}

TEST(Cli, RejectsDuplicateRegistration) {
  std::int64_t n = 0;
  ArgParser parser("prog", "test");
  parser.add_flag("n", &n, "count");
  EXPECT_THROW(parser.add_flag("n", &n, "again"), ArgumentError);
}

TEST(Cli, HelpReturnsKHelpAndMentionsFlags) {
  std::int64_t n = 3;
  ArgParser parser("prog", "summary line");
  parser.add_flag("n", &n, "the count");
  const char* argv[] = {"prog", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_EQ(parser.parse(2, argv), ParseResult::kHelp);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("summary line"), std::string::npos);
  EXPECT_NE(out.find("--n"), std::string::npos);
  EXPECT_NE(out.find("default: 3"), std::string::npos);
}

// ---------------------------------------------------------------- table ----

TEST(Table, AlignsColumns) {
  ConsoleTable table({"name", "value"});
  table.set_alignment(0, Align::kLeft);
  table.cell("a").cell(std::int64_t{1}).end_row();
  table.cell("long-name").cell(std::int64_t{22}).end_row();
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  // Header rule present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, RejectsRowWidthMismatch) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ArgumentError);
}

TEST(Table, DoubleFormatting) {
  ConsoleTable table({"x"});
  table.cell(1.23456, 2).end_row();
  EXPECT_NE(table.to_string().find("1.23"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(AsciiChart, RendersSeriesAndLegend) {
  AsciiChart::Options options;
  options.width = 32;
  options.height = 8;
  options.log_y = true;
  AsciiChart chart(options);
  chart.add_series("decay", '*', {0, 1, 2, 3}, {1.0, 0.1, 0.01, 0.001});
  std::ostringstream os;
  chart.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("decay"), std::string::npos);
}

TEST(AsciiChart, EmptyChartDoesNotCrash) {
  AsciiChart chart;
  std::ostringstream os;
  chart.print(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace geogossip
