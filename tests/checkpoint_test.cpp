// Tests for the resumable-sweep checkpoint layer (src/exp/checkpoint.*):
// record round-trips through JsonLinesSink::write_replicate, the documented
// fault-tolerance policy (torn tails, malformed lines, duplicates,
// conflicts, foreign records, empty files), the round-robin shard partition
// helpers, and the crash-safety contract of the sink itself.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>

#include "exp/checkpoint.hpp"
#include "exp/sink.hpp"
#include "support/check.hpp"

namespace geogossip::exp {
namespace {

constexpr std::uint64_t kSeed = 7;

/// A result exercising every persisted field.
ReplicateResult full_result(std::uint64_t seed) {
  ReplicateResult result;
  result.seed = seed;
  result.converged = true;
  result.final_error = 0.12345678912345678;
  result.sum_drift = 1.5e-14;
  result.transmissions.by_category = {10, 20, 3};
  result.far_exchanges = 4;
  result.near_exchanges = 9;
  result.metrics["hops"] = 3.5;
  result.metrics["tv distance"] = 1.25e-6;
  result.metrics["signed"] = -2.75;
  return result;
}

/// Serializes records exactly the way a streaming sweep does.
std::string record_lines(
    const std::vector<std::pair<Checkpoint::Key, ReplicateResult>>& records,
    const std::string& scenario = "tiny") {
  std::ostringstream out;
  JsonLinesSink sink(out);
  Cell cell;
  cell.label = "cell \"quoted\"\\backslash";  // exercises string escaping
  cell.n = 64;
  for (const auto& [key, result] : records) {
    sink.write_replicate(scenario, kSeed, cell, key.first, key.second,
                         result);
  }
  return out.str();
}

Checkpoint load_text(const std::string& text,
                     const std::string& scenario = "tiny") {
  Checkpoint checkpoint(scenario, kSeed);
  std::istringstream in(text);
  checkpoint.load(in);
  return checkpoint;
}

// ------------------------------------------------------------ round trip ----

TEST(Checkpoint, RoundTripsEveryPersistedField) {
  const auto original = full_result(12345);
  const auto checkpoint =
      load_text(record_lines({{{2, 5}, original}}));

  EXPECT_EQ(checkpoint.size(), 1u);
  EXPECT_EQ(checkpoint.stats().accepted, 1u);
  EXPECT_TRUE(checkpoint.contains(2, 5));
  EXPECT_FALSE(checkpoint.contains(2, 4));
  const ReplicateResult* loaded = checkpoint.find(2, 5);
  ASSERT_NE(loaded, nullptr);
  // Bit-identical re-ingestion: every field survives the text round trip
  // (format_double emits 17 significant digits, which round-trip doubles).
  EXPECT_TRUE(results_equal(original, *loaded));
  EXPECT_EQ(loaded->seed, 12345u);
  EXPECT_EQ(loaded->transmissions.total(), 33u);
  EXPECT_EQ(loaded->metrics.at("tv distance"), 1.25e-6);
  EXPECT_EQ(loaded->metrics.at("signed"), -2.75);
}

TEST(Checkpoint, RoundTripsNonFiniteValuesAndTreatsNaNDuplicatesAsEqual) {
  // NaN-propagating trackers and arbitrary probe metrics can persist
  // non-finite doubles; the sink writes NaN/Infinity/-Infinity tokens and
  // the reader must load them — a permanently unloadable record would
  // re-run (and re-append) forever and block --merge-only.
  ReplicateResult result;
  result.seed = 5;
  result.converged = false;
  result.final_error = std::numeric_limits<double>::quiet_NaN();
  result.metrics["up"] = std::numeric_limits<double>::infinity();
  result.metrics["down"] = -std::numeric_limits<double>::infinity();
  const std::string line = record_lines({{{0, 0}, result}});
  EXPECT_NE(line.find("\"final_error\":NaN"), std::string::npos);

  // Re-reads of the same NaN record are duplicates, never conflicts.
  const auto checkpoint = load_text(line + line);
  EXPECT_EQ(checkpoint.size(), 1u);
  EXPECT_EQ(checkpoint.stats().duplicate, 1u);
  EXPECT_EQ(checkpoint.stats().malformed, 0u);
  const ReplicateResult* loaded = checkpoint.find(0, 0);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(std::isnan(loaded->final_error));
  EXPECT_EQ(loaded->metrics.at("up"),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(loaded->metrics.at("down"),
            -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(results_equal(result, *loaded));
}

TEST(Checkpoint, RoundTripsExtremeSeedAndZeroTransmissions) {
  ReplicateResult result;  // a probe-style record: no tx, no exchanges
  result.seed = 0xFFFFFFFFFFFFFFFFull;
  result.converged = true;
  result.final_error = 0.0;
  result.metrics["value"] = 42.0;
  const auto checkpoint = load_text(record_lines({{{0, 0}, result}}));
  const ReplicateResult* loaded = checkpoint.find(0, 0);
  ASSERT_NE(loaded, nullptr);
  // 2^64-1 does not survive a double round trip — the uint path must.
  EXPECT_EQ(loaded->seed, 0xFFFFFFFFFFFFFFFFull);
  EXPECT_TRUE(results_equal(result, *loaded));
}

// -------------------------------------------------------- fault injection ----

TEST(Checkpoint, EmptyStreamIsAValidEmptyCheckpoint) {
  const auto checkpoint = load_text("");
  EXPECT_EQ(checkpoint.size(), 0u);
  EXPECT_EQ(checkpoint.stats().accepted, 0u);
  EXPECT_FALSE(checkpoint.stats().torn_tail);
}

TEST(Checkpoint, TruncationAtEveryByteOffsetNeverThrowsOrInventsRecords) {
  const std::string full = record_lines(
      {{{0, 0}, full_result(11)}, {{0, 1}, full_result(12)}});
  const std::size_t first_line_end = full.find('\n') + 1;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const auto checkpoint = load_text(full.substr(0, cut));
    // A record is recovered exactly when all of its bytes are on disk (a
    // tail missing only its newline is still a complete record); torn
    // prefixes never yield a record and never throw.
    const bool first_complete = cut + 1 >= first_line_end;
    const bool second_complete = cut + 1 >= full.size();
    EXPECT_EQ(checkpoint.contains(0, 0), first_complete) << "cut=" << cut;
    EXPECT_EQ(checkpoint.contains(0, 1), second_complete) << "cut=" << cut;
    EXPECT_EQ(checkpoint.size(), (first_complete ? 1u : 0u) +
                                     (second_complete ? 1u : 0u))
        << "cut=" << cut;
    EXPECT_EQ(checkpoint.stats().malformed, 0u) << "cut=" << cut;
  }
}

TEST(Checkpoint, TornFinalLineIsToleratedAndFlagged) {
  const std::string full = record_lines(
      {{{0, 0}, full_result(11)}, {{0, 1}, full_result(12)}});
  const std::size_t mid_second =
      full.find('\n') + 1 + (full.size() - full.find('\n')) / 2;
  const auto checkpoint = load_text(full.substr(0, mid_second));
  EXPECT_EQ(checkpoint.size(), 1u);
  EXPECT_TRUE(checkpoint.stats().torn_tail);
  EXPECT_EQ(checkpoint.stats().malformed, 0u);
}

TEST(Checkpoint, MalformedInteriorLineIsSkippedAndCounted) {
  const std::string good = record_lines({{{0, 0}, full_result(11)}});
  const std::string text =
      good + "this is not json\n" +
      record_lines({{{0, 1}, full_result(12)}});
  const auto checkpoint = load_text(text);
  EXPECT_EQ(checkpoint.size(), 2u);
  EXPECT_EQ(checkpoint.stats().malformed, 1u);
  EXPECT_FALSE(checkpoint.stats().torn_tail);
}

TEST(Checkpoint, IncompleteRecordFieldsAreMalformedNotFatal) {
  // Valid JSON, but not a trustworthy record: missing seed, transmissions
  // total without its category breakdown, out-of-range replicate.
  const std::string text =
      "{\"record\":\"replicate\",\"scenario\":\"tiny\",\"master_seed\":7,"
      "\"cell_index\":0,\"replicate\":0,\"converged\":true,"
      "\"final_error\":0.5,\"transmissions\":0}\n"
      "{\"record\":\"replicate\",\"scenario\":\"tiny\",\"master_seed\":7,"
      "\"cell_index\":0,\"replicate\":1,\"seed\":3,\"converged\":true,"
      "\"final_error\":0.5,\"transmissions\":30}\n"
      "{\"record\":\"replicate\",\"scenario\":\"tiny\",\"master_seed\":7,"
      "\"cell_index\":0,\"replicate\":4294967296,\"seed\":3,"
      "\"converged\":true,\"final_error\":0.5,\"transmissions\":0}\n";
  const auto checkpoint = load_text(text);
  EXPECT_EQ(checkpoint.size(), 0u);
  EXPECT_EQ(checkpoint.stats().malformed, 3u);
}

TEST(Checkpoint, DuplicateIdenticalRecordsCollapseWithACount) {
  const std::string line = record_lines({{{1, 2}, full_result(11)}});
  const auto checkpoint = load_text(line + line + line);
  EXPECT_EQ(checkpoint.size(), 1u);
  EXPECT_EQ(checkpoint.stats().accepted, 1u);
  EXPECT_EQ(checkpoint.stats().duplicate, 2u);
}

TEST(Checkpoint, ConflictingRecordsForOneKeyThrow) {
  auto conflicting = full_result(11);
  conflicting.final_error = 0.999;
  const std::string text =
      record_lines({{{1, 2}, full_result(11)}}) +
      record_lines({{{1, 2}, conflicting}});
  Checkpoint checkpoint("tiny", kSeed);
  std::istringstream in(text);
  EXPECT_THROW(checkpoint.load(in), ArgumentError);
}

TEST(Checkpoint, WrongScenarioOrMasterSeedRecordsAreForeign) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  Cell cell;
  cell.n = 64;
  sink.write_replicate("tiny", kSeed, cell, 0, 0, full_result(11));
  sink.write_replicate("other", kSeed, cell, 0, 1, full_result(12));
  sink.write_replicate("tiny", kSeed + 1, cell, 0, 2, full_result(13));
  const auto checkpoint = load_text(out.str());
  EXPECT_EQ(checkpoint.size(), 1u);
  EXPECT_TRUE(checkpoint.contains(0, 0));
  EXPECT_EQ(checkpoint.stats().foreign, 2u);
}

TEST(Checkpoint, CellSummaryLinesInterleaveAsOtherLines) {
  // A replicate file may also hold per-cell summary lines (no "record"
  // discriminator) — they are passed over, not mistaken for replicates.
  const std::string text =
      "{\"scenario\":\"tiny\",\"cell\":\"boyd\",\"n\":64}\n" +
      record_lines({{{0, 0}, full_result(11)}}) +
      "{\"record\":\"future-kind\",\"scenario\":\"tiny\"}\n";
  const auto checkpoint = load_text(text);
  EXPECT_EQ(checkpoint.size(), 1u);
  EXPECT_EQ(checkpoint.stats().other_lines, 2u);
  EXPECT_EQ(checkpoint.stats().malformed, 0u);
}

TEST(Checkpoint, BlankLinesAreIgnored) {
  const auto checkpoint =
      load_text("\n  \n" + record_lines({{{0, 0}, full_result(11)}}) + "\n");
  EXPECT_EQ(checkpoint.size(), 1u);
  EXPECT_EQ(checkpoint.stats().malformed, 0u);
}

TEST(Checkpoint, LoadFileThrowsOnMissingPath) {
  Checkpoint checkpoint("tiny", kSeed);
  EXPECT_THROW(checkpoint.load_file("/no/such/dir/ckpt.jsonl"),
               ArgumentError);
}

TEST(Checkpoint, LoadAccumulatesAcrossShardFiles) {
  Checkpoint checkpoint("tiny", kSeed);
  std::istringstream shard0(record_lines({{{0, 0}, full_result(11)}}));
  std::istringstream shard1(record_lines({{{0, 1}, full_result(12)}}));
  checkpoint.load(shard0);
  checkpoint.load(shard1);
  EXPECT_EQ(checkpoint.size(), 2u);
  EXPECT_EQ(checkpoint.records().begin()->first,
            (Checkpoint::Key{0, 0}));
}

// -------------------------------------------------------- shard partition ----

TEST(Sharding, RoundRobinPartitionIsDisjointAndCovering) {
  constexpr std::size_t kTasks = 60;
  for (const std::uint32_t k : {1u, 2u, 3u, 7u}) {
    std::size_t covered = 0;
    for (std::size_t task = 0; task < kTasks; ++task) {
      std::uint32_t owners = 0;
      for (std::uint32_t shard = 0; shard < k; ++shard) {
        owners += shard_owns(shard, k, task) ? 1 : 0;
      }
      EXPECT_EQ(owners, 1u) << "task " << task << " k " << k;
      covered += owners;
    }
    EXPECT_EQ(covered, kTasks);
  }
}

TEST(Sharding, RoundRobinTouchesEveryCellWhenShardsFitReplicates) {
  // task = cell_index * replicates + replicate; with k <= replicates every
  // shard must own at least one replicate of every cell.
  constexpr std::uint32_t kReplicates = 5;
  constexpr std::size_t kCells = 4;
  for (const std::uint32_t k : {2u, 3u, 5u}) {
    for (std::uint32_t shard = 0; shard < k; ++shard) {
      std::set<std::size_t> cells;
      for (std::size_t task = 0; task < kCells * kReplicates; ++task) {
        if (shard_owns(shard, k, task)) cells.insert(task / kReplicates);
      }
      EXPECT_EQ(cells.size(), kCells) << "shard " << shard << "/" << k;
    }
  }
}

TEST(Sharding, ShardPathInsertsTagBeforeExtension) {
  EXPECT_EQ(shard_path("out.jsonl", 0, 2), "out.shard-0-of-2.jsonl");
  EXPECT_EQ(shard_path("runs/e5.records.jsonl", 1, 3),
            "runs/e5.shard-1-of-3.records.jsonl");
  EXPECT_EQ(shard_path("noext", 2, 4), "noext.shard-2-of-4");
  // Dots in directories do not count as extensions.
  EXPECT_EQ(shard_path("v1.2/out", 0, 2), "v1.2/out.shard-0-of-2");
  // Unsharded paths pass through untouched.
  EXPECT_EQ(shard_path("out.jsonl", 0, 1), "out.jsonl");
}

TEST(Sharding, ShardPathHonorsPlaceholder) {
  EXPECT_EQ(shard_path("out-{shard}.jsonl", 1, 4), "out-1-of-4.jsonl");
  EXPECT_EQ(shard_path("{shard}/{shard}.jsonl", 0, 2),
            "0-of-2/0-of-2.jsonl");
  // Placeholder substitution applies even unsharded, keeping scripted
  // paths stable across k.
  EXPECT_EQ(shard_path("out-{shard}.jsonl", 0, 1), "out-0-of-1.jsonl");
}

TEST(Sharding, ShardPathValidatesCoordinates) {
  EXPECT_THROW(shard_path("out.jsonl", 2, 2), ArgumentError);
  EXPECT_THROW(shard_path("out.jsonl", 0, 0), ArgumentError);
}

// -------------------------------------------------------- sink crash-safety ----

TEST(SinkCrashSafety, WriteReplicateThrowsWhenTheStreamHasFailed) {
  std::ostringstream out;
  JsonLinesSink sink(out);
  Cell cell;
  cell.n = 64;
  sink.write_replicate("tiny", kSeed, cell, 0, 0, full_result(11));
  out.setstate(std::ios::badbit);  // the disk just filled up
  EXPECT_THROW(
      sink.write_replicate("tiny", kSeed, cell, 0, 1, full_result(12)),
      IoError);
}

TEST(SinkCrashSafety, AppendModeSealsATornTail) {
  const std::string path =
      testing::TempDir() + "checkpoint_test_append.jsonl";
  const std::string full = record_lines(
      {{{0, 0}, full_result(11)}, {{0, 1}, full_result(12)}});
  {
    // Simulate a killed writer: first record intact, second torn mid-line.
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << full.substr(0, full.find('\n') + 1 + 25);
  }
  {
    JsonLinesSink sink(path, JsonLinesSink::Mode::kAppend);
    Cell cell;
    cell.label = "cell \"quoted\"\\backslash";
    cell.n = 64;
    sink.write_replicate("tiny", kSeed, cell, 0, 1, full_result(12));
  }
  Checkpoint checkpoint("tiny", kSeed);
  checkpoint.load_file(path);
  // The sealed debris is one malformed interior line; both real records
  // survive and nothing is torn any more.
  EXPECT_EQ(checkpoint.size(), 2u);
  EXPECT_EQ(checkpoint.stats().malformed, 1u);
  EXPECT_FALSE(checkpoint.stats().torn_tail);
  std::remove(path.c_str());
}

TEST(SinkCrashSafety, AppendModeOnCleanOrMissingFileAddsNothing) {
  const std::string path =
      testing::TempDir() + "checkpoint_test_append_clean.jsonl";
  std::remove(path.c_str());
  {
    JsonLinesSink sink(path, JsonLinesSink::Mode::kAppend);
    Cell cell;
    cell.n = 64;
    sink.write_replicate("tiny", kSeed, cell, 0, 0, full_result(11));
  }
  {
    JsonLinesSink sink(path, JsonLinesSink::Mode::kAppend);
    Cell cell;
    cell.n = 64;
    sink.write_replicate("tiny", kSeed, cell, 0, 1, full_result(12));
  }
  Checkpoint checkpoint("tiny", kSeed);
  checkpoint.load_file(path);
  EXPECT_EQ(checkpoint.size(), 2u);
  EXPECT_EQ(checkpoint.stats().malformed, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geogossip::exp
