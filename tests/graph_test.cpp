// Unit + property tests for the graph module: CSR, G(n,r) construction,
// connectivity, radius helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geometry/sampling.hpp"
#include "graph/connectivity.hpp"
#include "graph/csr.hpp"
#include "graph/geometric_graph.hpp"
#include "graph/radius.hpp"
#include "routing/greedy.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace geogossip::graph {
namespace {

using geometry::Vec2;

// ------------------------------------------------------------------ CSR ----

TEST(Csr, FromEdgesBasics) {
  const auto g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  const auto nbrs = g.neighbors(1);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Csr, DegreeStats) {
  const auto g = CsrGraph::from_edges(4, {{0, 1}, {1, 2}, {1, 3}});
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 6.0 / 4.0);
}

TEST(Csr, RejectsBadEdges) {
  EXPECT_THROW(CsrGraph::from_edges(3, {{0, 0}}), ArgumentError);
  EXPECT_THROW(CsrGraph::from_edges(3, {{0, 5}}), ArgumentError);
  EXPECT_THROW(CsrGraph::from_edges(3, {{0, 1}, {1, 0}}), ArgumentError);
}

TEST(Csr, FromAdjacencyValidatesSymmetry) {
  const std::vector<std::vector<NodeId>> good{{1}, {0, 2}, {1}};
  const auto g = CsrGraph::from_adjacency(good);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  const std::vector<std::vector<NodeId>> asymmetric{{1}, {}};
  EXPECT_THROW(CsrGraph::from_adjacency(asymmetric), ArgumentError);
  const std::vector<std::vector<NodeId>> self_loop{{0}};
  EXPECT_THROW(CsrGraph::from_adjacency(self_loop), ArgumentError);
}

TEST(Csr, FromPartsAcceptsValidLayoutAndRejectsBrokenOnes) {
  // 0-1, 1-2 as a hand-laid CSR.
  const auto g = CsrGraph::from_parts({0, 1, 3, 4}, {1, 0, 2, 1});
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));

  EXPECT_THROW(CsrGraph::from_parts({}, {}), ArgumentError);
  // offsets must start at 0 and end at targets.size().
  EXPECT_THROW(CsrGraph::from_parts({1, 2}, {0}), ArgumentError);
  EXPECT_THROW(CsrGraph::from_parts({0, 2}, {1}), ArgumentError);
  // non-monotone offsets / unsorted row / duplicate / self-loop / range.
  EXPECT_THROW(CsrGraph::from_parts({0, 2, 1, 4}, {1, 2, 0, 0}),
               ArgumentError);
  // Non-monotone with an interior offset PAST targets.size(): must be
  // rejected without ever forming an out-of-bounds row iterator.
  EXPECT_THROW(CsrGraph::from_parts({0, 5, 2, 2}, {1, 0}), ArgumentError);
  EXPECT_THROW(CsrGraph::from_parts({0, 2, 3, 4}, {2, 1, 0, 0}),
               ArgumentError);
  EXPECT_THROW(CsrGraph::from_parts({0, 2, 2}, {1, 1}), ArgumentError);
  EXPECT_THROW(CsrGraph::from_parts({0, 1, 2}, {0, 0}), ArgumentError);
  EXPECT_THROW(CsrGraph::from_parts({0, 1, 2}, {5, 0}), ArgumentError);
}

TEST(Csr, NodeCountCeilingIsExplicit) {
  // NodeId is 32-bit: n >= 2^32 must be rejected with a clear error, not
  // silently truncated.  The check itself is cheap and allocation-free.
  EXPECT_NO_THROW(CsrGraph::check_node_count(CsrGraph::max_node_count()));
  EXPECT_THROW(CsrGraph::check_node_count(std::uint64_t{1} << 32),
               ArgumentError);
  EXPECT_THROW(CsrGraph::check_node_count((std::uint64_t{1} << 32) + 7),
               ArgumentError);
  // The graph builders fail before allocating anything n-sized.
  Rng rng(7);
  EXPECT_THROW(
      GeometricGraph::sample(std::size_t{1} << 32, 2.0, rng),
      ArgumentError);
}

TEST(Csr, EmptyGraph) {
  const auto g = CsrGraph::from_edges(0, {});
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.min_degree(), 0u);
}

// ------------------------------------------------------------ UnionFind ----

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(0, 3));
  EXPECT_EQ(uf.size_of(2), 3u);
  EXPECT_EQ(uf.size_of(4), 1u);
  EXPECT_THROW(uf.find(5), ArgumentError);
}

// --------------------------------------------------------- Connectivity ----

TEST(Connectivity, ComponentsOnKnownGraph) {
  // Two triangles plus an isolated node.
  const auto g = CsrGraph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[6], labels[0]);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(largest_component_size(g), 3u);
}

TEST(Connectivity, PathGraphDistancesAndDiameter) {
  const auto g = CsrGraph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_TRUE(is_connected(g));
  const auto dist = bfs_distances(g, 0);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
  EXPECT_EQ(hop_diameter(g), 4u);
}

TEST(Connectivity, BfsUnreachableIsMarked) {
  const auto g = CsrGraph::from_edges(3, {{0, 1}});
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], std::numeric_limits<std::uint32_t>::max());
  EXPECT_THROW(hop_diameter(g), ArgumentError);
}

TEST(Connectivity, SingletonIsConnected) {
  const auto g = CsrGraph::from_edges(1, {});
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(hop_diameter(g), 0u);
}

// --------------------------------------------------------------- Radius ----

TEST(Radius, FormulasAndMonotonicity) {
  EXPECT_NEAR(threshold_radius(1000),
              std::sqrt(std::log(1000.0) / (std::numbers::pi * 1000.0)),
              1e-12);
  EXPECT_GT(paper_radius(1000), threshold_radius(1000));
  EXPECT_GT(paper_radius(1000), paper_radius(10000));  // shrinks with n
  EXPECT_NEAR(expected_interior_degree(1000, paper_radius(1000)),
              std::numbers::pi * 4.0 * std::log(1000.0), 1e-9);
  EXPECT_DOUBLE_EQ(expected_route_hops(1.0, 0.25), 4.0);
  EXPECT_THROW(paper_radius(1), ArgumentError);
}

// -------------------------------------------------------- GeometricGraph ----

class GrgProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GrgProperty, EdgesMatchBruteForceDistanceCheck) {
  const std::size_t n = GetParam();
  Rng rng(300 + n);
  const auto points = geometry::sample_unit_square(n, rng);
  const double r = paper_radius(n, 1.5);
  const GeometricGraph g(points, r);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool close = geometry::distance(points[i], points[j]) <= r;
      EXPECT_EQ(g.adjacency().has_edge(static_cast<NodeId>(i),
                                       static_cast<NodeId>(j)),
                close)
          << "pair (" << i << ',' << j << ')';
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GrgProperty,
                         ::testing::Values(2, 10, 64, 200));

TEST(GeometricGraph, SampleIsConnectedAtPaperRadius) {
  // Multiplier 2 keeps moderate deployments connected in essentially every
  // seed (DESIGN.md); verify across several seeds.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const auto g = GeometricGraph::sample(800, 2.0, rng);
    EXPECT_TRUE(is_connected(g.adjacency())) << "seed " << seed;
  }
}

TEST(GeometricGraph, NearestNodeMatchesBruteForce) {
  Rng rng(31);
  const auto g = GeometricGraph::sample(300, 2.0, rng);
  for (int probe = 0; probe < 40; ++probe) {
    const Vec2 q{rng.next_double(), rng.next_double()};
    const NodeId got = g.nearest_node(q);
    double best = 1e18;
    NodeId expected = 0;
    for (NodeId i = 0; i < g.node_count(); ++i) {
      const double d = geometry::distance_sq(g.position(i), q);
      if (d < best) {
        best = d;
        expected = i;
      }
    }
    EXPECT_EQ(got, expected);
  }
}

TEST(GeometricGraph, DegreeNearExpectedInterior) {
  Rng rng(32);
  const std::size_t n = 3000;
  const auto g = GeometricGraph::sample(n, 2.0, rng);
  const double expected = expected_interior_degree(n, g.radius());
  // Mean degree is below the interior expectation (boundary effects) but
  // within a factor ~0.7..1.0.
  EXPECT_GT(g.adjacency().mean_degree(), 0.6 * expected);
  EXPECT_LT(g.adjacency().mean_degree(), 1.05 * expected);
}

TEST(GeometricGraph, SummaryIsInformative) {
  Rng rng(33);
  const auto g = GeometricGraph::sample(100, 2.0, rng);
  const std::string text = g.summary();
  EXPECT_NE(text.find("G(n=100"), std::string::npos);
  EXPECT_NE(text.find("edges"), std::string::npos);
}

TEST(GeometricGraph, Validation) {
  EXPECT_THROW(GeometricGraph({}, 0.1), ArgumentError);
  EXPECT_THROW(GeometricGraph({{0.5, 0.5}}, 0.0), ArgumentError);
  Rng rng(1);
  EXPECT_THROW(GeometricGraph::sample(1, 2.0, rng), ArgumentError);
}

// ----------------------------------------- two-pass build / lazy mirror ----

/// Full structural equality of two graphs built from the same points:
/// CSR offsets + per-node neighbour lists, then (after forcing both
/// mirrors) the routing-ordered ids and radii, byte for byte.
void expect_identical_graphs(const GeometricGraph& a,
                             const GeometricGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.adjacency().edge_count(), b.adjacency().edge_count());
  const auto offsets_a = a.adjacency().offsets();
  const auto offsets_b = b.adjacency().offsets();
  ASSERT_TRUE(std::equal(offsets_a.begin(), offsets_a.end(),
                         offsets_b.begin(), offsets_b.end()));
  a.ensure_routing_mirror();
  b.ensure_routing_mirror();
  for (NodeId v = 0; v < a.node_count(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "node " << v;
    const auto ia = a.routing_ids(v);
    const auto ib = b.routing_ids(v);
    ASSERT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin(), ib.end()))
        << "routing ids of node " << v;
    const auto ra = a.routing_radii(v);
    const auto rb = b.routing_radii(v);
    ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
        << "routing radii of node " << v;
  }
}

TEST(GeometricGraph, ParallelBuildBitIdenticalToSerialAcrossSeeds) {
  // The acceptance property of the two-pass build: any thread count
  // produces byte-identical CSR and routing-mirror arrays.  1 vs 4
  // threads (and an uneven 3) across several seeds and a non-trivial n.
  const ThreadPool pool4(4);
  const ThreadPool pool3(3);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng_serial(seed);
    Rng rng_p4(seed);
    Rng rng_p3(seed);
    const auto serial = GeometricGraph::sample(700, 1.5, rng_serial);
    const auto par4 =
        GeometricGraph::sample(700, 1.5, rng_p4, {.pool = &pool4});
    const auto par3 =
        GeometricGraph::sample(700, 1.5, rng_p3, {.pool = &pool3});
    expect_identical_graphs(serial, par4);
    expect_identical_graphs(serial, par3);
  }
}

TEST(GeometricGraph, ParallelBuildMatchesSerialOnArbitraryPointSets) {
  // Raw constructor (no spatial renumbering, so the grid's visit order is
  // NOT presorted and pass 2 exercises its per-row sort), clustered
  // points included.
  Rng rng(91);
  auto points = geometry::sample_unit_square(500, rng);
  for (std::size_t i = 0; i < 60; ++i) {  // a dense cluster
    points.push_back({0.5 + 1e-4 * static_cast<double>(i % 8), 0.5});
  }
  const double r = paper_radius(points.size(), 1.5);
  const ThreadPool pool(4);
  const GeometricGraph serial(points, r);
  const GeometricGraph parallel(points, r, geometry::Rect::unit_square(),
                                {.pool = &pool});
  expect_identical_graphs(serial, parallel);
}

TEST(GeometricGraph, RoutingMirrorIsLazyAndEagerOptionForcesIt) {
  Rng rng_lazy(55);
  Rng rng_eager(55);
  const auto lazy = GeometricGraph::sample(400, 2.0, rng_lazy);
  const auto eager = GeometricGraph::sample(
      400, 2.0, rng_eager, {.eager_routing_mirror = true});
  EXPECT_FALSE(lazy.routing_mirror_built());
  EXPECT_TRUE(eager.routing_mirror_built());

  // Routing through the lazy graph materializes the mirror on first use
  // and takes exactly the same hops as on the eager graph.
  Rng pick(7);
  for (int trial = 0; trial < 25; ++trial) {
    const auto src = static_cast<NodeId>(pick.below(lazy.node_count()));
    const auto dst = static_cast<NodeId>(
        pick.below_excluding(lazy.node_count(), src));
    const auto via_lazy = routing::route_to_node(lazy, src, dst);
    const auto via_eager = routing::route_to_node(eager, src, dst);
    EXPECT_EQ(via_lazy.status, via_eager.status);
    EXPECT_EQ(via_lazy.hops, via_eager.hops);
    EXPECT_EQ(via_lazy.final_node, via_eager.final_node);
  }
  EXPECT_TRUE(lazy.routing_mirror_built());
  expect_identical_graphs(lazy, eager);
}

TEST(GeometricGraph, NonRoutingUseNeverBuildsTheMirror) {
  Rng rng(66);
  const auto g = GeometricGraph::sample(300, 2.0, rng);
  // The measurement-style workload: degrees, neighbours, nearest queries.
  (void)g.adjacency().mean_degree();
  (void)g.neighbors(0);
  (void)g.nearest_node({0.25, 0.75});
  (void)g.summary();
  EXPECT_FALSE(g.routing_mirror_built());
}

TEST(GeometricGraph, SubThresholdRadiusDisconnects) {
  // Far below the Gupta-Kumar threshold the graph shatters — the fixture
  // behind the connectivity experiment E7.
  Rng rng(34);
  const auto points = geometry::sample_unit_square(1000, rng);
  const GeometricGraph g(points, 0.25 * threshold_radius(1000));
  EXPECT_FALSE(is_connected(g.adjacency()));
  EXPECT_LT(largest_component_size(g.adjacency()), 500u);
}

}  // namespace
}  // namespace geogossip::graph
