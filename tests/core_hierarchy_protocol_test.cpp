// Tests for the faithful §4.2 asynchronous state machine.
#include <gtest/gtest.h>

#include <numeric>

#include "core/hierarchy_protocol.hpp"
#include "gossip/pairwise.hpp"
#include "graph/geometric_graph.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/field.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace geogossip::core {
namespace {

using graph::GeometricGraph;

GeometricGraph make_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return GeometricGraph::sample(n, 2.0, rng);
}

std::vector<double> make_field(const GeometricGraph& g, Rng& rng) {
  auto x0 = sim::gaussian_field(g.node_count(), rng);
  sim::center_and_normalize(x0);
  return x0;
}

TEST(AsyncProtocol, ConvergesOnSmallDeployment) {
  const auto g = make_graph(512, 700);
  Rng rng(701);
  auto x0 = make_field(g, rng);

  HierarchyProtocolConfig config;
  config.eps = 3e-2;
  HierarchicalAffineProtocol protocol(g, x0, rng, config);

  sim::RunConfig run;
  run.epsilon = 3e-2;
  run.max_ticks = 60'000'000;
  const auto result = sim::run_to_epsilon(protocol, rng, run);
  EXPECT_TRUE(result.converged) << result.to_string();
  EXPECT_GT(protocol.far_exchanges(), 0u);
  EXPECT_GT(protocol.near_exchanges(), 0u);
  EXPECT_GT(protocol.activations(), 0u);
}

TEST(AsyncProtocol, ConservesSum) {
  const auto g = make_graph(512, 702);
  Rng rng(703);
  auto x0 = make_field(g, rng);
  const double sum0 = std::accumulate(x0.begin(), x0.end(), 0.0);

  HierarchyProtocolConfig config;
  config.eps = 1e-1;
  HierarchicalAffineProtocol protocol(g, x0, rng, config);
  sim::AsyncClock clock(static_cast<std::uint32_t>(g.node_count()), rng);
  for (int i = 0; i < 2'000'000; ++i) protocol.on_tick(clock.next());
  EXPECT_NEAR(protocol.value_sum(), sum0, 1e-7);
}

TEST(AsyncProtocol, ChargesAllCategories) {
  const auto g = make_graph(512, 704);
  Rng rng(705);
  auto x0 = make_field(g, rng);
  HierarchyProtocolConfig config;
  config.eps = 5e-2;
  HierarchicalAffineProtocol protocol(g, x0, rng, config);
  sim::AsyncClock clock(static_cast<std::uint32_t>(g.node_count()), rng);
  for (int i = 0; i < 2'000'000; ++i) protocol.on_tick(clock.next());
  const auto snapshot = protocol.meter().snapshot();
  EXPECT_GT(snapshot[sim::TxCategory::kLocal], 0u);
  EXPECT_GT(snapshot[sim::TxCategory::kLongRange], 0u);
  EXPECT_GT(snapshot[sim::TxCategory::kControl], 0u);
}

TEST(AsyncProtocol, BudgetsGrowTowardsTheRoot) {
  const auto g = make_graph(1024, 706);
  Rng rng(707);
  HierarchyProtocolConfig config;
  HierarchicalAffineProtocol protocol(
      g, std::vector<double>(g.node_count(), 0.0), rng, config);
  const auto& h = protocol.hierarchy();
  // The root's averaging latency dominates any leaf's.
  double max_leaf = 0.0;
  for (const int leaf : h.leaves()) {
    max_leaf = std::max(max_leaf, protocol.averaging_time(leaf));
  }
  EXPECT_GT(protocol.averaging_time(h.root()), max_leaf);
}

TEST(AsyncProtocol, SeparationPropertyHolds) {
  // Control separation: Far events are much rarer than Near events — the
  // practical analogue of the paper's n^(-a) rate suppression.
  const auto g = make_graph(512, 708);
  Rng rng(709);
  auto x0 = make_field(g, rng);
  HierarchyProtocolConfig config;
  config.eps = 5e-2;
  HierarchicalAffineProtocol protocol(g, x0, rng, config);
  sim::AsyncClock clock(static_cast<std::uint32_t>(g.node_count()), rng);
  for (int i = 0; i < 1'000'000; ++i) protocol.on_tick(clock.next());
  ASSERT_GT(protocol.far_exchanges(), 0u);
  EXPECT_GT(protocol.near_exchanges(), 10 * protocol.far_exchanges());
}

TEST(AsyncProtocol, NothingHappensWhenNothingIsActive) {
  // Before the root representative's first tick, every other node is off:
  // their ticks must be free (no transmissions).
  const auto g = make_graph(256, 710);
  Rng rng(711);
  auto x0 = make_field(g, rng);
  HierarchyProtocolConfig config;
  HierarchicalAffineProtocol protocol(g, x0, rng, config);
  const auto& h = protocol.hierarchy();
  const auto root_rep = static_cast<std::uint32_t>(
      h.square(h.root()).representative);
  sim::Tick tick;
  for (std::uint32_t node = 0; node < g.node_count(); ++node) {
    if (node == root_rep) continue;
    tick.node = node;
    protocol.on_tick(tick);
  }
  EXPECT_EQ(protocol.meter().total(), 0u);
  EXPECT_EQ(protocol.near_exchanges(), 0u);
}

TEST(AsyncProtocol, RootTickActivatesChildren) {
  const auto g = make_graph(256, 712);
  Rng rng(713);
  auto x0 = make_field(g, rng);
  HierarchyProtocolConfig config;
  HierarchicalAffineProtocol protocol(g, x0, rng, config);
  const auto& h = protocol.hierarchy();
  sim::Tick tick;
  tick.node = static_cast<std::uint32_t>(h.square(h.root()).representative);
  protocol.on_tick(tick);
  EXPECT_GE(protocol.activations(), 1u);
  EXPECT_GT(protocol.meter().snapshot()[sim::TxCategory::kControl], 0u);
}

TEST(AsyncProtocol, GrowsSubquadraticallyInN) {
  // The async machine's constants are large at small n (its control budgets
  // include the latency_factor stand-in for n^a), so it does not beat the
  // baselines in absolute terms at test scale — but its transmissions must
  // grow with an exponent well below Boyd's ~2: quadrupling n should cost
  // far less than 16x.
  const auto total_at = [](std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    auto g = GeometricGraph::sample(n, 2.0, rng);
    auto x0 = sim::gaussian_field(n, rng);
    sim::center_and_normalize(x0);
    HierarchyProtocolConfig config;
    config.eps = 5e-2;
    // Keep both sizes at hierarchy depth 2 so the comparison measures
    // scaling rather than a structural level change.
    config.leaf_threshold = 64.0;
    HierarchicalAffineProtocol protocol(g, x0, rng, config);
    sim::RunConfig run;
    run.epsilon = 5e-2;
    run.max_ticks = 300'000'000;
    const auto result = sim::run_to_epsilon(protocol, rng, run);
    EXPECT_TRUE(result.converged) << "n=" << n << " " << result.to_string();
    return static_cast<double>(result.transmissions.total());
  };
  const double small = total_at(512, 714);
  const double large = total_at(2048, 715);
  EXPECT_LT(large / small, 12.0);  // quadratic scaling would give ~16x
  EXPECT_GT(large, small);         // and it is not free either
}

TEST(AsyncProtocol, Validation) {
  const auto g = make_graph(64, 717);
  Rng rng(718);
  HierarchyProtocolConfig config;
  config.eps = 0.0;
  EXPECT_THROW(HierarchicalAffineProtocol(
                   g, std::vector<double>(g.node_count(), 0.0), rng, config),
               ArgumentError);
  config.eps = 1e-2;
  config.latency_factor = 0.5;
  EXPECT_THROW(HierarchicalAffineProtocol(
                   g, std::vector<double>(g.node_count(), 0.0), rng, config),
               ArgumentError);
}

}  // namespace
}  // namespace geogossip::core
