// Tests for the fleet coordinator (satellite #3 of the fault-tolerance
// PR): lease filename round-trips, the claim rename winning exactly once
// under a thread race, steal-only-after-expiry, renewal outliving the
// TTL, supersession detection, planner election (including dead-planner
// re-election and plan mismatch refusal), the solo-worker end-to-end
// path, a kill-at-every-phase battery over hand-built on-disk states,
// torn-snapshot fallback, and merge bit-identity against an
// uninterrupted single-process run.
#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/convergence.hpp"
#include "exp/checkpoint.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "fleet/lease.hpp"
#include "fleet/plan.hpp"
#include "fleet/worker.hpp"
#include "support/check.hpp"

namespace geogossip {
namespace {

namespace fs = std::filesystem;

std::string test_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ggfleet_" + leaf);
  fs::remove_all(dir);
  return dir.string();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "failed writing " << path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Two small pairwise-gossip cells; fast enough to run dozens of times.
exp::Scenario fleet_scenario() {
  exp::Scenario scenario;
  scenario.name = "fleet-e2e";
  scenario.replicates = 2;
  scenario.master_seed = 21;
  for (const std::size_t n : {std::size_t{96}, std::size_t{128}}) {
    auto& cell = scenario.add(core::ProtocolKind::kBoydPairwise, n);
    cell.options.eps = 1e-2;
  }
  return scenario;
}

/// Election options that never actually sleep (the fleet dir is local,
/// contention resolves in microseconds).
fleet::EnsurePlanOptions fast_plan_options() {
  fleet::EnsurePlanOptions options;
  options.stale_claim_seconds = 0.0;
  options.poll_seconds = 0.001;
  return options;
}

fleet::WorkerOptions worker_options(const std::string& fleet_dir,
                                    const std::string& worker,
                                    std::uint32_t batches) {
  fleet::WorkerOptions options;
  options.fleet_dir = fleet_dir;
  options.worker = worker;
  options.batches = batches;
  options.ttl_seconds = 0.2;
  options.threads = 2;
  options.poll_seconds = 0.02;
  options.stale_claim_seconds = 0.0;
  options.heartbeat_interval_seconds = 0.5;
  return options;
}

/// The reference: an uninterrupted single-process run at the same thread
/// count every fleet worker uses in these tests.
exp::SweepSummary reference_summary(const exp::Scenario& scenario) {
  exp::RunnerOptions options;
  options.threads = 2;
  return exp::Runner(options).run(scenario);
}

bool summaries_identical(const exp::SweepSummary& a,
                         const exp::SweepSummary& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& ca = a.cells[i];
    const auto& cb = b.cells[i];
    if (ca.converged != cb.converged) return false;
    if (ca.median_tx != cb.median_tx) return false;
    if (ca.q25_tx != cb.q25_tx) return false;
    if (ca.q75_tx != cb.q75_tx) return false;
    if (ca.mean_control_share != cb.mean_control_share) return false;
  }
  return true;
}

/// Folds every fleet record file and re-aggregates without executing
/// anything — the merge path run_fleet_merge uses.
exp::SweepSummary merge_fleet(const std::string& fleet_dir,
                              const exp::Scenario& scenario) {
  auto checkpoint = std::make_shared<exp::Checkpoint>(scenario.name,
                                                      scenario.master_seed);
  for (const std::string& file : fleet::all_record_files(fleet_dir)) {
    checkpoint->load_file(file);
  }
  exp::RunnerOptions options;
  options.threads = 2;
  options.resume_from = checkpoint;
  return exp::Runner(options).run(scenario);
}

/// The complete-fleet cleanliness invariant: all batches done, no queue
/// tickets, no lease files, no temp debris, no parked snapshots.
void expect_fleet_clean(const std::string& fleet_dir, std::uint32_t batches) {
  EXPECT_EQ(fleet::done_batches(fleet_dir, batches).size(), batches);
  EXPECT_TRUE(fs::is_empty(fleet::queue_dir(fleet_dir)));
  EXPECT_TRUE(fs::is_empty(fleet::leases_dir(fleet_dir)));
  for (const auto& entry : fs::recursive_directory_iterator(fleet_dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "temp debris left behind: " << entry.path();
    EXPECT_EQ(name.find(".ggsnap"), std::string::npos)
        << "snapshot left parked after completion: " << entry.path();
  }
}

/// Runs a fresh worker to fleet completion and checks the full
/// robustness contract: complete, clean, and merge-identical to the
/// uninterrupted reference.
void complete_and_verify(const std::string& fleet_dir,
                         const exp::Scenario& scenario, std::uint32_t batches,
                         const exp::SweepSummary& reference,
                         const std::string& worker) {
  std::ostringstream out;
  const fleet::WorkerReport report =
      fleet::run_worker(scenario, worker_options(fleet_dir, worker, batches),
                        out);
  EXPECT_TRUE(report.fleet_complete) << out.str();
  expect_fleet_clean(fleet_dir, batches);
  const exp::SweepSummary merged = merge_fleet(fleet_dir, scenario);
  EXPECT_EQ(merged.executed_replicates, 0u)
      << "merge had to execute work — fleet records are incomplete";
  EXPECT_TRUE(summaries_identical(merged, reference));
}

// -------------------------------------------------------- lease names ----

TEST(LeaseFilename, RoundTripsThroughParse) {
  const std::string name = fleet::lease_filename(12, 3, "w-abc_7");
  EXPECT_EQ(name, "batch-12.g3.w-abc_7.lease");
  std::uint32_t batch = 0;
  std::uint32_t generation = 0;
  std::string owner;
  ASSERT_TRUE(fleet::parse_lease_filename(name, &batch, &generation, &owner));
  EXPECT_EQ(batch, 12u);
  EXPECT_EQ(generation, 3u);
  EXPECT_EQ(owner, "w-abc_7");
}

TEST(LeaseFilename, RejectsDebrisAndForeignNames) {
  std::uint32_t batch = 0;
  std::uint32_t generation = 0;
  std::string owner;
  for (const std::string name :
       {"batch-1.g0.w1.lease.tmp.123", "batch-1.json", "batch-x.g0.w1.lease",
        "batch-1.gx.w1.lease", "batch-1.g0..lease", "", "lease"}) {
    EXPECT_FALSE(
        fleet::parse_lease_filename(name, &batch, &generation, &owner))
        << name;
  }
}

TEST(LeaseFilename, OwnerValidationGuardsFilenameSegments) {
  EXPECT_TRUE(fleet::valid_owner("w1-host_A"));
  EXPECT_FALSE(fleet::valid_owner(""));
  EXPECT_FALSE(fleet::valid_owner("has space"));
  EXPECT_FALSE(fleet::valid_owner("dot.dot"));
  EXPECT_FALSE(fleet::valid_owner("slash/slash"));
  EXPECT_FALSE(fleet::valid_owner(std::string(129, 'a')));
}

// -------------------------------------------------------------- claims ----

TEST(LeaseStore, RefusesADirectoryWithoutALayout) {
  const std::string dir = test_dir("no_layout");
  fs::create_directories(dir);
  EXPECT_THROW(fleet::LeaseStore store(dir), ArgumentError);
}

TEST(LeaseStore, ClaimRaceHasExactlyOneWinner) {
  const std::string dir = test_dir("claim_race");
  const exp::Scenario scenario = fleet_scenario();
  fleet::ensure_plan(dir, scenario, 1, fast_plan_options());
  fleet::LeaseStore store(dir);

  constexpr int kRacers = 8;
  std::atomic<int> wins{0};
  std::vector<std::thread> racers;
  racers.reserve(kRacers);
  for (int i = 0; i < kRacers; ++i) {
    racers.emplace_back([&store, &wins, i] {
      const std::string owner = "racer" + std::to_string(i);
      if (store.try_claim(0, owner, 30.0, "hb/" + owner + ".jsonl")) {
        wins.fetch_add(1);
      }
    });
  }
  for (auto& racer : racers) racer.join();

  EXPECT_EQ(wins.load(), 1);
  EXPECT_TRUE(store.queued().empty());
  ASSERT_EQ(store.leases().size(), 1u);
  EXPECT_EQ(store.leases()[0].generation, 0u);
}

TEST(LeaseStore, StealRefusesALiveLease) {
  const std::string dir = test_dir("steal_live");
  fleet::ensure_plan(dir, fleet_scenario(), 1, fast_plan_options());
  fleet::LeaseStore store(dir);

  const auto lease = store.try_claim(0, "alive", 30.0, "hb/alive.jsonl");
  ASSERT_TRUE(lease.has_value());
  EXPECT_FALSE(
      store.try_steal(*lease, "thief", 30.0, "hb/thief.jsonl").has_value());
}

TEST(LeaseStore, StealTakesAnExpiredLeaseAtTheNextGeneration) {
  const std::string dir = test_dir("steal_expired");
  fleet::ensure_plan(dir, fleet_scenario(), 1, fast_plan_options());
  fleet::LeaseStore store(dir);

  const auto lease = store.try_claim(0, "dying", 0.01, "hb/dying.jsonl");
  ASSERT_TRUE(lease.has_value());
  sleep_ms(30);  // let the 10ms TTL lapse with no renewal

  const auto stolen =
      store.try_steal(*lease, "thief", 30.0, "hb/thief.jsonl");
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->batch, 0u);
  EXPECT_EQ(stolen->generation, 1u);
  EXPECT_EQ(stolen->owner, "thief");
  EXPECT_FALSE(fs::exists(lease->path)) << "old generation not renamed away";
  ASSERT_EQ(store.leases().size(), 1u);
  EXPECT_EQ(store.leases()[0].generation, 1u);
}

TEST(LeaseStore, RenewalKeepsALeaseAliveWellPastItsTtl) {
  const std::string dir = test_dir("renew_beats_ttl");
  fleet::ensure_plan(dir, fleet_scenario(), 1, fast_plan_options());
  fleet::LeaseStore store(dir);

  auto lease = store.try_claim(0, "slow", 0.05, "hb/slow.jsonl");
  ASSERT_TRUE(lease.has_value());
  // Outlive the 50ms TTL several times over, renewing along the way — an
  // alive-but-slow owner must never look stealable.
  for (int i = 0; i < 5; ++i) {
    sleep_ms(20);
    ASSERT_TRUE(store.renew(*lease));
    EXPECT_FALSE(
        store.try_steal(*lease, "thief", 30.0, "hb/thief.jsonl").has_value())
        << "renewed lease was stolen on round " << i;
  }
}

TEST(LeaseStore, RenewDetectsSupersessionAndSelfCleans) {
  const std::string dir = test_dir("renew_superseded");
  fleet::ensure_plan(dir, fleet_scenario(), 1, fast_plan_options());
  fleet::LeaseStore store(dir);

  auto lease = store.try_claim(0, "victim", 0.01, "hb/victim.jsonl");
  ASSERT_TRUE(lease.has_value());
  sleep_ms(30);
  ASSERT_TRUE(
      store.try_steal(*lease, "thief", 30.0, "hb/thief.jsonl").has_value());

  EXPECT_FALSE(store.renew(*lease))
      << "original owner failed to notice the higher generation";
  // Exactly the thief's generation-1 lease remains.
  const auto leases = store.leases();
  ASSERT_EQ(leases.size(), 1u);
  EXPECT_EQ(leases[0].generation, 1u);
  EXPECT_EQ(leases[0].owner, "thief");
}

TEST(LeaseStore, ReleaseMakesABatchInstantlyStealable) {
  const std::string dir = test_dir("release");
  fleet::ensure_plan(dir, fleet_scenario(), 1, fast_plan_options());
  fleet::LeaseStore store(dir);

  const auto lease = store.try_claim(0, "quitter", 30.0, "hb/q.jsonl");
  ASSERT_TRUE(lease.has_value());
  store.release(*lease);
  EXPECT_TRUE(store.leases().empty());
}

// ------------------------------------------------------------ the plan ----

TEST(FleetPlan, BatchTaskCountsPartitionTheTaskStream) {
  fleet::FleetPlan plan;
  plan.cells = 3;
  plan.replicates = 2;
  plan.batches = 4;
  std::uint64_t total = 0;
  for (std::uint32_t b = 0; b < plan.batches; ++b) {
    total += plan.batch_task_count(b);
  }
  EXPECT_EQ(total, plan.total_tasks());
  EXPECT_EQ(plan.batch_task_count(0), 2u);  // 6 tasks round-robin over 4
  EXPECT_EQ(plan.batch_task_count(3), 1u);
}

TEST(FleetPlan, EnsurePlanFoundsValidatesAndAdopts) {
  const std::string dir = test_dir("plan_lifecycle");
  const exp::Scenario scenario = fleet_scenario();

  const fleet::FleetPlan founded =
      fleet::ensure_plan(dir, scenario, 2, fast_plan_options());
  EXPECT_EQ(founded.batches, 2u);
  EXPECT_EQ(founded.scenario, scenario.name);
  // Layout is complete: tickets for both batches, all subdirectories.
  fleet::LeaseStore store(dir);
  EXPECT_EQ(store.queued(), (std::vector<std::uint32_t>{0, 1}));

  // Rejoining with the same shape is idempotent; batches = 0 adopts.
  EXPECT_EQ(fleet::ensure_plan(dir, scenario, 2, fast_plan_options()).batches,
            2u);
  EXPECT_EQ(fleet::ensure_plan(dir, scenario, 0, fast_plan_options()).batches,
            2u);

  // A different batch count, or any scenario-shape drift, is refused.
  EXPECT_THROW(fleet::ensure_plan(dir, scenario, 3, fast_plan_options()),
               ArgumentError);
  exp::Scenario edited = fleet_scenario();
  edited.master_seed = 22;
  EXPECT_THROW(fleet::ensure_plan(dir, edited, 2, fast_plan_options()),
               ArgumentError);
}

TEST(FleetPlan, DeadPlannerClaimIsSweptAndTheElectionReruns) {
  const std::string dir = test_dir("dead_planner");
  // Simulate a planner SIGKILLed after winning the election but before
  // committing plan.json: the claim directory exists, nothing else does.
  fs::create_directories(fleet::claim_dir(dir));

  const fleet::FleetPlan plan =
      fleet::ensure_plan(dir, fleet_scenario(), 2, fast_plan_options());
  EXPECT_EQ(plan.batches, 2u);
  EXPECT_TRUE(fs::exists(fleet::plan_path(dir)));
}

TEST(FleetPlan, WaitingOutAForeignElectionTimesOutLoudly) {
  const std::string dir = test_dir("election_timeout");
  fs::create_directories(fleet::claim_dir(dir));

  fleet::EnsurePlanOptions options;
  options.stale_claim_seconds = 9999.0;  // the claim never looks dead
  options.wait_timeout_seconds = 0.2;
  options.poll_seconds = 0.1;
  std::vector<double> sleeps;
  options.sleeper = [&sleeps](double seconds) { sleeps.push_back(seconds); };
  EXPECT_THROW(fleet::ensure_plan(dir, fleet_scenario(), 2, options),
               IoError);
  EXPECT_GE(sleeps.size(), 2u);
}

TEST(FleetPlan, CorruptPlanStopsTheFleetInsteadOfRestartingIt) {
  const std::string dir = test_dir("corrupt_plan");
  fleet::ensure_plan(dir, fleet_scenario(), 2, fast_plan_options());
  spit(fleet::plan_path(dir), "{\"record\":\"fleet_plan\",\"schema\":");
  EXPECT_THROW(fleet::try_load_plan(dir), ArgumentError);
}

TEST(FleetPlan, RequeueRestoresAClaimableTicket) {
  const std::string dir = test_dir("requeue");
  fleet::ensure_plan(dir, fleet_scenario(), 2, fast_plan_options());
  fleet::LeaseStore store(dir);
  ASSERT_TRUE(store.try_claim(1, "w1", 30.0, "hb/w1.jsonl").has_value());
  ASSERT_EQ(store.queued(), (std::vector<std::uint32_t>{0}));

  fleet::requeue_batch(dir, 1);
  fleet::requeue_batch(dir, 1);  // idempotent
  EXPECT_EQ(store.queued(), (std::vector<std::uint32_t>{0, 1}));
}

// --------------------------------------------------------- solo worker ----

TEST(FleetWorker, SoloWorkerCompletesTheFleetCleanly) {
  const std::string dir = test_dir("solo");
  const exp::Scenario scenario = fleet_scenario();
  const exp::SweepSummary reference = reference_summary(scenario);

  std::ostringstream out;
  const fleet::WorkerReport report =
      fleet::run_worker(scenario, worker_options(dir, "solo", 2), out);

  EXPECT_TRUE(report.fleet_complete);
  EXPECT_EQ(report.batches_completed, 2u);
  EXPECT_EQ(report.batches_claimed, 2u);
  EXPECT_EQ(report.batches_stolen, 0u);
  EXPECT_EQ(report.replicates_executed, 4u);
  expect_fleet_clean(dir, 2);

  const exp::SweepSummary merged = merge_fleet(dir, scenario);
  EXPECT_EQ(merged.executed_replicates, 0u);
  EXPECT_EQ(merged.resumed_replicates, 4u);
  EXPECT_TRUE(summaries_identical(merged, reference));

  // The protocol artifacts a fleet leaves for humans and tooling.  The
  // obs counters are process-global totals, so assert the keys exist
  // rather than exact values (earlier tests may also have counted).
  EXPECT_TRUE(fs::exists(fleet::heartbeat_path(dir, "solo")));
  const std::string stats = slurp(fleet::worker_stats_path(dir, "solo"));
  EXPECT_NE(stats.find("\"record\":\"fleet_worker_stats\""),
            std::string::npos);
  EXPECT_NE(stats.find("\"batches_completed\":2"), std::string::npos);
  EXPECT_NE(stats.find("\"fleet.lease_claimed\":"), std::string::npos);
  EXPECT_NE(stats.find("\"fleet.batch_completed\":"), std::string::npos);
}

TEST(FleetWorker, MaxBatchesStopsEarlyAndASecondWorkerFinishes) {
  const std::string dir = test_dir("two_steps");
  const exp::Scenario scenario = fleet_scenario();
  const exp::SweepSummary reference = reference_summary(scenario);

  std::ostringstream out;
  fleet::WorkerOptions first = worker_options(dir, "first", 2);
  first.max_batches = 1;
  const fleet::WorkerReport step =
      fleet::run_worker(scenario, first, out);
  EXPECT_FALSE(step.fleet_complete);
  EXPECT_EQ(step.batches_completed, 1u);

  complete_and_verify(dir, scenario, 2, reference, "second");
}

TEST(FleetWorker, RefusesBadOptions) {
  const std::string dir = test_dir("bad_options");
  std::ostringstream out;
  fleet::WorkerOptions options = worker_options(dir, "bad name", 2);
  EXPECT_THROW(fleet::run_worker(fleet_scenario(), options, out),
               ArgumentError);
  options = worker_options(dir, "ok", 2);
  options.ttl_seconds = 0.0;
  EXPECT_THROW(fleet::run_worker(fleet_scenario(), options, out),
               ArgumentError);
  // batches = 0 refuses to FOUND a fleet (nothing to adopt here).
  options = worker_options(dir, "ok", 0);
  EXPECT_THROW(fleet::run_worker(fleet_scenario(), options, out),
               ArgumentError);
}

// ----------------------------------------------- kill at every phase ----

// Simulates a worker SIGKILLed at each phase of the protocol by building
// exactly the on-disk state such a kill leaves, then asserts one fresh
// worker drives the fleet to a complete, clean, merge-identical end.
TEST(FleetWorker, RecoversFromAKillAtEveryProtocolPhase) {
  const exp::Scenario scenario = fleet_scenario();
  const exp::SweepSummary reference = reference_summary(scenario);
  constexpr std::uint32_t kBatches = 2;

  {  // Phase: killed after the election claim, before plan.json.
    const std::string dir = test_dir("kill_mid_election");
    fs::create_directories(fleet::claim_dir(dir));
    complete_and_verify(dir, scenario, kBatches, reference, "rescue");
  }

  {  // Phase: killed after founding — plan + tickets, nothing claimed.
    const std::string dir = test_dir("kill_after_plan");
    fleet::ensure_plan(dir, scenario, kBatches, fast_plan_options());
    complete_and_verify(dir, scenario, kBatches, reference, "rescue");
  }

  {  // Phase: killed between the claim rename and the first renewal —
     // the lease file still holds ticket content (expires = 0), which
     // must read as instantly reclaimable.
    const std::string dir = test_dir("kill_pre_renewal");
    fleet::ensure_plan(dir, scenario, kBatches, fast_plan_options());
    fs::rename(fleet::queue_ticket_path(dir, 0),
               fs::path(fleet::leases_dir(dir)) /
                   fleet::lease_filename(0, 0, "dead"));
    complete_and_verify(dir, scenario, kBatches, reference, "rescue");
  }

  {  // Phase: killed mid-batch after renewing — a real lease whose TTL
     // then lapses, no records written yet.
    const std::string dir = test_dir("kill_mid_batch");
    fleet::ensure_plan(dir, scenario, kBatches, fast_plan_options());
    fleet::LeaseStore store(dir);
    ASSERT_TRUE(store.try_claim(0, "dead", 0.01, "hb/dead.jsonl").has_value());
    sleep_ms(30);
    complete_and_verify(dir, scenario, kBatches, reference, "rescue");
  }

  {  // Phase: killed mid-batch with partial records and a torn final
     // line.  The new owner folds the finished record, seals the torn
     // debris, and runs only the remainder.
    const std::string dir = test_dir("kill_torn_records");
    fleet::ensure_plan(dir, scenario, kBatches, fast_plan_options());
    fleet::LeaseStore store(dir);
    ASSERT_TRUE(store.try_claim(0, "dead", 0.01, "hb/dead.jsonl").has_value());
    // Batch 0 of 2 owns tasks {0, 2} = (cell 0, rep 0) and (cell 1, rep 0).
    // Persist the first the way the dead worker would have...
    const exp::ReplicateResult done = exp::run_replicate(
        scenario.cells[0],
        exp::replicate_seed(scenario.master_seed, 0, 0));
    const std::string records = fleet::records_path(dir, 0, 0, "dead");
    {
      exp::JsonLinesSink sink(records);
      sink.write_replicate(scenario.name, scenario.master_seed,
                           scenario.cells[0], 0, 0, done);
    }
    // ...then append the torn debris of the record it died writing.
    std::ofstream torn(records, std::ios::binary | std::ios::app);
    torn << "{\"record\":\"replicate\",\"scenario\":\"fleet-e2e\",\"cell";
    torn.close();
    sleep_ms(30);
    complete_and_verify(dir, scenario, kBatches, reference, "rescue");
    // The dead owner's record was reused, not re-run: folding every
    // record file yields 4 distinct records with zero duplicates.
    exp::Checkpoint fold(scenario.name, scenario.master_seed);
    for (const std::string& file : fleet::all_record_files(dir)) {
      fold.load_file(file);
    }
    EXPECT_EQ(fold.stats().accepted, 4u);
    EXPECT_EQ(fold.stats().duplicate, 0u);
  }

  {  // Phase: killed between the done marker and the lease sweep — the
     // batch is complete but its lease file lingers.
    const std::string dir = test_dir("kill_before_sweep");
    std::ostringstream out;
    fleet::WorkerOptions first = worker_options(dir, "finisher", kBatches);
    first.max_batches = 1;
    const fleet::WorkerReport step =
        fleet::run_worker(scenario, first, out);
    ASSERT_EQ(step.batches_completed, 1u);
    const std::uint32_t finished =
        fleet::done_batches(dir, kBatches).at(0);
    spit((fs::path(fleet::leases_dir(dir)) /
          fleet::lease_filename(finished, 1, "finisher"))
             .string(),
         "{\"record\":\"fleet_lease\"}");
    complete_and_verify(dir, scenario, kBatches, reference, "rescue");
  }
}

TEST(FleetWorker, TornSnapshotFallsBackToRestartFromScratch) {
  const std::string dir = test_dir("torn_snapshot");
  const exp::Scenario scenario = fleet_scenario();
  const exp::SweepSummary reference = reference_summary(scenario);

  fleet::ensure_plan(dir, scenario, 2, fast_plan_options());
  // A dead worker parked a snapshot for (cell 0, replicate 0), but the
  // kill tore it: the reclaiming worker must fail its restore cleanly
  // and rerun the replicate from scratch, bit-identically.
  spit((fs::path(fleet::snaps_dir(dir)) / "snap-c0-r0.ggsnap").string(),
       "GGSNAPnot really a snapshot");
  fs::rename(fleet::queue_ticket_path(dir, 0),
             fs::path(fleet::leases_dir(dir)) /
                 fleet::lease_filename(0, 0, "dead"));

  complete_and_verify(dir, scenario, 2, reference, "rescue");
}

// --------------------------------------------------------------- merge ----

// The real deployment shape: one worker per PROCESS, coordinating only
// through the fleet directory.  fork() gives each worker its own obs
// state and its own crash domain, exactly like production — and keeps
// obs::snapshot()'s quiescence contract, which two in-process workers
// would violate.
TEST(FleetWorker, TwoProcessFleetMergesIdenticallyToASingleProcessRun) {
#if !defined(__unix__) && !defined(__APPLE__)
  GTEST_SKIP() << "fork()-based multi-process test is unix-only";
#else
  const std::string dir = test_dir("two_workers");
  const exp::Scenario scenario = fleet_scenario();
  const exp::SweepSummary reference = reference_summary(scenario);

  const auto spawn_worker = [&](const std::string& worker) -> pid_t {
    const pid_t pid = fork();
    if (pid != 0) return pid;
    // Child: run to fleet completion, report through the exit code.
    // Both founders race the election, so the claim grace must be real.
    fleet::WorkerOptions options = worker_options(dir, worker, 2);
    options.stale_claim_seconds = 30.0;
    std::ostringstream sink;
    try {
      const fleet::WorkerReport report =
          fleet::run_worker(scenario, options, sink);
      _exit(report.fleet_complete ? 0 : 2);
    } catch (...) {
      _exit(1);
    }
  };

  const pid_t pid_a = spawn_worker("wa");
  ASSERT_GT(pid_a, 0);
  const pid_t pid_b = spawn_worker("wb");
  ASSERT_GT(pid_b, 0);
  for (const pid_t pid : {pid_a, pid_b}) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  expect_fleet_clean(dir, 2);
  // Both workers wrote their protocol artifacts.
  EXPECT_TRUE(fs::exists(fleet::worker_stats_path(dir, "wa")));
  EXPECT_TRUE(fs::exists(fleet::worker_stats_path(dir, "wb")));

  const exp::SweepSummary merged = merge_fleet(dir, scenario);
  EXPECT_EQ(merged.executed_replicates, 0u);
  EXPECT_TRUE(summaries_identical(merged, reference));
#endif
}

}  // namespace
}  // namespace geogossip
