// Edge-case and failure-path coverage that the per-module suites leave
// open: degenerate deployments, zero-convergence aggregation, file-backed
// CSV, protocol behaviour on pathological graphs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/convergence.hpp"
#include "core/decentralized.hpp"
#include "core/hierarchy_protocol.hpp"
#include "geometry/sampling.hpp"
#include "gossip/pairwise.hpp"
#include "gossip/spanning_tree.hpp"
#include "graph/connectivity.hpp"
#include "graph/geometric_graph.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"
#include "sim/field.hpp"
#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"

namespace geogossip {
namespace {

using geometry::Vec2;
using graph::GeometricGraph;

// --------------------------------------------------------- tiny graphs ----

TEST(EdgeCases, TwoNodeGraphEverythingWorks) {
  const std::vector<Vec2> points{{0.4, 0.5}, {0.6, 0.5}};
  const GeometricGraph g(points, 0.5);
  ASSERT_TRUE(graph::is_connected(g.adjacency()));

  const auto tree = gossip::spanning_tree_average(g, {1.0, 3.0});
  EXPECT_TRUE(tree.complete);
  EXPECT_DOUBLE_EQ(tree.mean, 2.0);
  EXPECT_EQ(tree.transmissions.total(), 2u);

  Rng rng(2000);
  core::TrialOptions options;
  options.eps = 1e-6;
  const auto outcome = core::run_protocol_trial(
      core::ProtocolKind::kBoydPairwise, g, {1.0, 3.0}, rng, options);
  EXPECT_TRUE(outcome.converged);
}

TEST(EdgeCases, SingleNodeSpanningTree) {
  const std::vector<Vec2> points{{0.5, 0.5}};
  const GeometricGraph g(points, 0.1);
  const auto tree = gossip::spanning_tree_average(g, {42.0});
  EXPECT_TRUE(tree.complete);
  EXPECT_DOUBLE_EQ(tree.mean, 42.0);
  EXPECT_EQ(tree.transmissions.total(), 0u);
  EXPECT_EQ(gossip::spanning_tree_floor(1), 0u);
}

// -------------------------------------------------- zero-convergence agg ----

TEST(EdgeCases, SweepPointHandlesTotalNonConvergence) {
  core::TrialOptions options;
  options.eps = 1e-9;
  options.max_ticks = 100;  // hopeless
  const auto point = core::sweep_point(core::ProtocolKind::kBoydPairwise,
                                       256, 2.0, 3, 2001, options);
  EXPECT_DOUBLE_EQ(point.converged_fraction, 0.0);
  EXPECT_DOUBLE_EQ(point.median_tx, 0.0);
}

// ------------------------------------------------------- file-backed CSV ----

TEST(EdgeCases, CsvWriterRoundTripsThroughAFile) {
  const std::string path = "/tmp/geogossip_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.field(std::int64_t{1}).field("x,y").end_row();
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,\"x,y\"\n");
  std::remove(path.c_str());
  EXPECT_THROW(CsvWriter("/nonexistent-dir/nope.csv"), ArgumentError);
}

// ---------------------------------------- protocols on hostile networks ----

TEST(EdgeCases, AsyncProtocolSurvivesClusteredDeployment) {
  Rng rng(2002);
  auto points = geometry::sample_clustered(
      600, geometry::Rect::unit_square(), 3, 0.06, rng);
  const GeometricGraph g(std::move(points), 0.25);
  auto x0 = sim::gaussian_field(g.node_count(), rng);
  sim::center_and_normalize(x0);

  core::HierarchyProtocolConfig config;
  config.eps = 1e-1;
  core::HierarchicalAffineProtocol protocol(g, x0, rng, config);
  sim::AsyncClock clock(static_cast<std::uint32_t>(g.node_count()), rng);
  const double sum0 = protocol.value_sum();
  for (int i = 0; i < 500'000; ++i) protocol.on_tick(clock.next());
  EXPECT_NEAR(protocol.value_sum(), sum0, 1e-7);
  // No NaN/inf leaked into the state.
  for (const double v : protocol.values()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(EdgeCases, DecentralizedSurvivesEmptySquares) {
  // Clustered deployment leaves many grid squares empty; the protocol must
  // only ever target non-empty ones and never stall.
  Rng rng(2003);
  auto points = geometry::sample_clustered(
      500, geometry::Rect::unit_square(), 2, 0.05, rng);
  const GeometricGraph g(std::move(points), 0.3);
  auto x0 = sim::gaussian_field(g.node_count(), rng);

  core::DecentralizedAffineGossip protocol(g, x0, rng, {});
  sim::AsyncClock clock(static_cast<std::uint32_t>(g.node_count()), rng);
  const double sum0 = protocol.value_sum();
  for (int i = 0; i < 300'000; ++i) protocol.on_tick(clock.next());
  EXPECT_NEAR(protocol.value_sum(), sum0, 1e-7);
  EXPECT_GT(protocol.far_exchanges(), 0u);
}

TEST(EdgeCases, PairwiseOnStarGraphConverges) {
  // A hub with spokes: extreme degree asymmetry.
  std::vector<Vec2> points{{0.5, 0.5}};
  for (int k = 0; k < 12; ++k) {
    const double angle = 2.0 * 3.14159265358979 * k / 12.0;
    points.push_back({0.5 + 0.04 * std::cos(angle),
                      0.5 + 0.04 * std::sin(angle)});
  }
  const GeometricGraph g(std::move(points), 0.05);
  Rng rng(2004);
  std::vector<double> x0(g.node_count(), 0.0);
  x0[0] = 13.0;
  gossip::PairwiseGossip protocol(g, x0, rng);
  sim::RunConfig run;
  run.epsilon = 1e-3;
  run.max_ticks = 10'000'000;
  const auto result = sim::run_to_epsilon(protocol, rng, run);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(protocol.values()[3], 1.0, 0.1);
}

// ----------------------------------------------------- hierarchy corners ----

TEST(EdgeCases, HierarchyWithAllPointsInOneCorner) {
  Rng rng(2005);
  std::vector<Vec2> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.uniform(0.0, 0.05), rng.uniform(0.0, 0.05)});
  }
  geometry::HierarchyConfig config;
  config.leaf_occupancy = 20.0;
  const geometry::PartitionHierarchy h(points, config);
  // Nearly every square is empty, but invariants still hold.
  EXPECT_GT(h.empty_squares(), 0);
  std::size_t members = 0;
  for (const int leaf : h.leaves()) {
    members += h.square(leaf).occupancy();
  }
  EXPECT_EQ(members, points.size());
  // Multilevel still averages this pathological deployment.
  const GeometricGraph g(points, 0.03);
  if (graph::is_connected(g.adjacency())) {
    auto x0 = sim::gaussian_field(g.node_count(), rng);
    sim::center_and_normalize(x0);
    core::MultilevelConfig mconfig;
    mconfig.eps = 1e-2;
    core::MultilevelAffineGossip protocol(g, x0, rng, mconfig);
    const auto result = protocol.run();
    EXPECT_TRUE(result.converged);
  }
}

TEST(EdgeCases, EngineCheckIntervalControlsDetectionGranularity) {
  Rng rng(2006);
  const auto g = GeometricGraph::sample(128, 2.0, rng);
  auto x0 = sim::gaussian_field(g.node_count(), rng);
  sim::center_and_normalize(x0);

  gossip::PairwiseGossip fine(g, x0, rng);
  sim::RunConfig config;
  config.epsilon = 5e-2;
  config.max_ticks = 10'000'000;
  config.check_interval = 1;  // every tick
  const auto fine_result = sim::run_to_epsilon(fine, rng, config);

  Rng rng2(2006);
  (void)GeometricGraph::sample(128, 2.0, rng2);  // burn the same stream
  gossip::PairwiseGossip coarse(g, x0, rng2);
  config.check_interval = 100000;
  const auto coarse_result = sim::run_to_epsilon(coarse, rng2, config);

  ASSERT_TRUE(fine_result.converged);
  ASSERT_TRUE(coarse_result.converged);
  // Coarse checking can only stop at multiples of the interval.
  EXPECT_EQ(coarse_result.ticks % 100000, 0u);
  EXPECT_LE(fine_result.ticks, coarse_result.ticks);
}

}  // namespace
}  // namespace geogossip
