// Integration tests: the full pipeline (deployment -> graph -> protocol ->
// epsilon-averaging) across every protocol, plus cross-protocol invariants
// and failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/convergence.hpp"
#include "geometry/sampling.hpp"
#include "graph/connectivity.hpp"
#include "graph/geometric_graph.hpp"
#include "sim/field.hpp"
#include "stats/regression.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace geogossip::core {
namespace {

using graph::GeometricGraph;

GeometricGraph make_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return GeometricGraph::sample(n, 2.0, rng);
}

std::vector<double> make_field(const GeometricGraph& g, std::uint64_t seed) {
  Rng rng(seed);
  auto x0 = sim::gaussian_field(g.node_count(), rng);
  sim::center_and_normalize(x0);
  return x0;
}

// Every protocol converges to the same mean on the same graph, conserving
// the value sum.
class AllProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllProtocols, ConvergesAndConservesSum) {
  const ProtocolKind kind = GetParam();
  const std::size_t n = kind == ProtocolKind::kBoydPairwise ? 512 : 1024;
  const auto g = make_graph(n, 900);
  const auto x0 = make_field(g, 901);

  Rng rng(902);
  TrialOptions options;
  options.eps = 1e-2;
  const auto outcome = run_protocol_trial(kind, g, x0, rng, options);

  EXPECT_TRUE(outcome.converged)
      << protocol_kind_name(kind) << " err=" << outcome.final_error;
  EXPECT_LE(outcome.final_error, 1e-2);
  EXPECT_LT(outcome.sum_drift, 1e-6) << protocol_kind_name(kind);
  EXPECT_GT(outcome.transmissions.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllProtocols,
    ::testing::Values(ProtocolKind::kBoydPairwise,
                      ProtocolKind::kDimakisGeographic,
                      ProtocolKind::kPathAveraging,
                      ProtocolKind::kAffineOneLevel,
                      ProtocolKind::kAffineMultilevel,
                      ProtocolKind::kAffineAsync,
                      ProtocolKind::kAffineDecentralized),
    [](const auto& info) {
      std::string name(protocol_kind_name(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Integration, ScalingExponentOrderingMatchesTheory) {
  // The paper's headline is about scaling SHAPE, and absolute crossovers at
  // unit constants sit beyond simulable n (EXPERIMENTS.md E5).  What must
  // hold at test scale: the affine one-level protocol's fitted exponent is
  // far below Dimakis' ~1.5-1.65, and Boyd's is the largest of the three.
  TrialOptions options;
  options.eps = 1e-3;

  const auto exponent_for = [&](ProtocolKind kind,
                                const std::vector<std::size_t>& ns) {
    std::vector<double> xs;
    std::vector<double> medians;
    for (const std::size_t n : ns) {
      const auto point = sweep_point(kind, n, 1.2, 2, 930, options);
      EXPECT_GT(point.converged_fraction, 0.5)
          << protocol_kind_name(kind) << " n=" << n;
      xs.push_back(static_cast<double>(n));
      medians.push_back(point.median_tx);
    }
    return stats::fit_power_law(xs, medians).exponent;
  };

  const double affine =
      exponent_for(ProtocolKind::kAffineOneLevel, {512, 2048, 8192});
  const double dimakis =
      exponent_for(ProtocolKind::kDimakisGeographic, {512, 2048, 8192});
  const double boyd =
      exponent_for(ProtocolKind::kBoydPairwise, {512, 2048, 8192});

  EXPECT_LT(affine, 1.35);   // measured ~1.2 (approaching 1.5 only as the
                             // quadratic in-square term grows)
  EXPECT_GT(dimakis, affine + 0.15);  // measured gap ~0.28
  EXPECT_GT(boyd, 1.55);     // measured ~1.72, heading for 2
  EXPECT_GT(dimakis, 1.40);  // measured ~1.48, the n^1.5 row
}

TEST(Integration, ProtocolKindRoundTrip) {
  for (const auto kind :
       {ProtocolKind::kBoydPairwise, ProtocolKind::kDimakisGeographic,
        ProtocolKind::kPathAveraging, ProtocolKind::kAffineOneLevel,
        ProtocolKind::kAffineMultilevel, ProtocolKind::kAffineAsync,
        ProtocolKind::kAffineDecentralized}) {
    EXPECT_EQ(parse_protocol_kind(std::string(protocol_kind_name(kind))),
              kind);
  }
  EXPECT_THROW(parse_protocol_kind("nope"), ArgumentError);
}

TEST(Integration, SweepPointAggregates) {
  TrialOptions options;
  options.eps = 3e-2;
  const auto point = sweep_point(ProtocolKind::kAffineMultilevel, 512, 2.0,
                                 4, 908, options);
  EXPECT_EQ(point.n, 512u);
  EXPECT_GT(point.converged_fraction, 0.7);
  EXPECT_GT(point.median_tx, 0.0);
  EXPECT_LE(point.q25_tx, point.median_tx);
  EXPECT_LE(point.median_tx, point.q75_tx);
  EXPECT_GE(point.mean_control_share, 0.0);
  EXPECT_LT(point.mean_control_share, 1.0);
}

TEST(Integration, UnreachableEpsilonReportsNonConvergence) {
  const auto g = make_graph(256, 909);
  const auto x0 = make_field(g, 910);
  Rng rng(911);
  TrialOptions options;
  options.eps = 1e-3;
  options.max_ticks = 500;  // far too few
  const auto outcome = run_protocol_trial(ProtocolKind::kBoydPairwise, g, x0,
                                          rng, options);
  EXPECT_FALSE(outcome.converged);
  EXPECT_GT(outcome.final_error, 1e-3);
}

TEST(Integration, ClusteredDeploymentDoesNotCrashProtocols) {
  // Failure injection: heavily clustered deployment -> empty squares,
  // occupancy far from E#, representative routing across sparse areas, and
  // possibly a disconnected graph.  Protocols must stay well-defined and
  // conserve the value sum; the adaptive harmonic beta keeps the affine
  // update stable when occupancies deviate wildly from E# (see the
  // companion test for the paper-literal gain's behaviour).
  Rng rng(912);
  auto points = geometry::sample_clustered(
      800, geometry::Rect::unit_square(), 4, 0.05, rng);
  const GeometricGraph g(std::move(points), 0.22);
  const auto x0 = make_field(g, 913);

  TrialOptions options;
  options.eps = 5e-2;
  options.multilevel.beta_mode = BetaMode::kActualHarmonic;
  for (const auto kind : {ProtocolKind::kAffineOneLevel,
                          ProtocolKind::kAffineMultilevel,
                          ProtocolKind::kDimakisGeographic}) {
    Rng trial_rng(914);
    const auto outcome = run_protocol_trial(kind, g, x0, trial_rng, options);
    EXPECT_LT(outcome.sum_drift, 1e-6) << protocol_kind_name(kind);
    EXPECT_LE(outcome.final_error, 2.0) << protocol_kind_name(kind);
  }
}

TEST(Integration, PaperLiteralGainLeavesAlphaRangeOnClusteredDeployments) {
  // With beta = (2/5) E# (paper-literal), clustered occupancies push the
  // effective alpha = beta / #(square) out of (1/3, 1/2) — the instability
  // §6 controls via concentration, observed here directly.
  Rng rng(924);
  auto points = geometry::sample_clustered(
      800, geometry::Rect::unit_square(), 4, 0.05, rng);
  const GeometricGraph g(std::move(points), 0.22);
  const auto x0 = make_field(g, 925);

  MultilevelConfig config;
  config.eps = 5e-2;
  config.beta_mode = BetaMode::kExpected;
  config.max_top_rounds = 400;  // bounded: divergence is a valid outcome
  Rng trial_rng(926);
  MultilevelAffineGossip protocol(g, x0, trial_rng, config);
  const auto result = protocol.run();
  EXPECT_GT(result.alpha_out_of_range, 0u);
}

TEST(Integration, DisconnectedGraphKeepsComponentMeans) {
  // Below the connectivity threshold no averaging protocol can mix across
  // components; the value sum must still be conserved and nothing crashes.
  Rng rng(915);
  const auto points = geometry::sample_unit_square(400, rng);
  const GeometricGraph g(points, 0.02);  // deeply sub-threshold
  ASSERT_FALSE(graph::is_connected(g.adjacency()));
  const auto x0 = make_field(g, 916);

  TrialOptions options;
  options.eps = 1e-2;
  options.max_ticks = 200'000;
  Rng trial_rng(917);
  const auto outcome = run_protocol_trial(ProtocolKind::kBoydPairwise, g, x0,
                                          trial_rng, options);
  EXPECT_FALSE(outcome.converged);
  EXPECT_LT(outcome.sum_drift, 1e-8);
}

TEST(Integration, EveryFieldKindAverages) {
  const auto g = make_graph(512, 918);
  TrialOptions options;
  options.eps = 3e-2;
  for (const auto kind :
       {sim::FieldKind::kSpike, sim::FieldKind::kGradient,
        sim::FieldKind::kGaussian, sim::FieldKind::kCheckerboard}) {
    Rng rng(919);
    auto x0 = sim::make_field(kind, g.points(), rng);
    sim::center_and_normalize(x0);
    if (sim::deviation_norm(x0) == 0.0) continue;
    const auto outcome = run_protocol_trial(ProtocolKind::kAffineMultilevel,
                                            g, x0, rng, options);
    EXPECT_TRUE(outcome.converged) << sim::field_kind_name(kind);
  }
}

TEST(Integration, AsyncAndRoundAccountingAgreeOnMagnitude) {
  // The §4.2 machine and the round-based accounting simulate the same
  // protocol; their transmissions-to-eps should land within a factor ~8
  // of each other at small scale.
  const auto g = make_graph(512, 920);
  const auto x0 = make_field(g, 921);
  TrialOptions options;
  options.eps = 5e-2;

  Rng rng_a(922);
  const auto round_based = run_protocol_trial(
      ProtocolKind::kAffineMultilevel, g, x0, rng_a, options);
  Rng rng_b(923);
  const auto async =
      run_protocol_trial(ProtocolKind::kAffineAsync, g, x0, rng_b, options);

  ASSERT_TRUE(round_based.converged);
  ASSERT_TRUE(async.converged);
  const double ratio =
      static_cast<double>(async.transmissions.total()) /
      static_cast<double>(round_based.transmissions.total());
  EXPECT_GT(ratio, 1.0 / 8.0);
  EXPECT_LT(ratio, 8.0);
}

}  // namespace
}  // namespace geogossip::core
