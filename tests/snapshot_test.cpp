// Tests for the Snapshot/Restore protocol API (mid-replicate durability):
// exact RNG stream-position save/restore, the binary writer/reader pair and
// its truncation behaviour, the per-family interrupted-vs-uninterrupted
// bit-identity contract, the torn-write-safe SnapshotStore file format
// (truncation at every byte, checksum corruption, identity and schema
// mismatches), the JSONL schema stamp, and the Runner's end-to-end
// crash/resume path.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/convergence.hpp"
#include "exp/checkpoint.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/schema.hpp"
#include "exp/sink.hpp"
#include "exp/snapshot_store.hpp"
#include "geometry/sampling.hpp"
#include "graph/geometric_graph.hpp"
#include "sim/field.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/snapshot.hpp"

namespace geogossip {
namespace {

// ------------------------------------------------------------------ Rng ----

TEST(RngSnapshot, RestoreContinuesTheStreamBitIdentically) {
  Rng rng(1234);
  for (int i = 0; i < 100; ++i) rng.next_u64();  // advance to mid-stream

  SnapshotWriter w;
  rng.save(w);
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(rng.next_u64());

  Rng other(999);  // deliberately different seed: restore must overwrite
  SnapshotReader r(w.bytes());
  other.restore(r);
  r.finish();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(other.next_u64(), expected[static_cast<std::size_t>(i)]);
  }
}

TEST(RngSnapshot, SpareNormalIsPartOfTheStreamPosition) {
  // Marsaglia polar generates normals in pairs and caches the spare; a
  // save taken between the two must restore the cached value, or every
  // draw after the next normal() shifts.
  Rng rng(77);
  (void)rng.normal();  // leaves a spare cached (or not — both paths valid)

  SnapshotWriter w;
  rng.save(w);
  std::vector<double> expected;
  for (int i = 0; i < 32; ++i) expected.push_back(rng.normal());

  Rng other(1);
  (void)other.normal();  // desync other's spare state before restoring
  SnapshotReader r(w.bytes());
  other.restore(r);
  r.finish();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(other.normal(), expected[static_cast<std::size_t>(i)]);
  }
}

// -------------------------------------------------------- writer/reader ----

SnapshotWriter full_writer() {
  SnapshotWriter w;
  w.u8(200);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-0.1);
  w.str("length-prefixed \0 binary");  // literal: embedded NUL truncates at
                                       // the \0 — still a valid str payload
  w.u8_span(std::vector<std::uint8_t>{1, 2, 3});
  w.u32_span(std::vector<std::uint32_t>{7, 8});
  w.f64_span(std::vector<double>{1.5, -2.5, 3.25});
  return w;
}

void read_all(SnapshotReader& r) {
  (void)r.u8();
  (void)r.u32();
  (void)r.u64();
  (void)r.f64();
  (void)r.str();
  (void)r.u8_span();
  (void)r.u32_span();
  (void)r.f64_span();
  r.finish();
}

TEST(SnapshotFormat, RoundTripsEveryFieldType) {
  const auto w = full_writer();
  SnapshotReader r(w.bytes());
  EXPECT_EQ(r.u8(), 200);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -0.1);  // exact: IEEE bit pattern, not text
  EXPECT_EQ(r.str(), "length-prefixed ");
  EXPECT_EQ(r.u8_span(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.u32_span(), (std::vector<std::uint32_t>{7, 8}));
  EXPECT_EQ(r.f64_span(), (std::vector<double>{1.5, -2.5, 3.25}));
  EXPECT_TRUE(r.at_end());
  r.finish();
}

TEST(SnapshotFormat, EveryTruncationPointThrowsIoError) {
  const std::string bytes = full_writer().bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    SnapshotReader r(std::string_view(bytes).substr(0, len));
    EXPECT_THROW(read_all(r), IoError) << "prefix length " << len;
  }
}

TEST(SnapshotFormat, TrailingBytesAreRejectedByFinish) {
  const std::string bytes = full_writer().bytes() + "x";
  SnapshotReader r(bytes);
  EXPECT_THROW(read_all(r), IoError);
}

TEST(SnapshotFormat, NanPayloadRoundTripsExactly) {
  SnapshotWriter w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.f64(-std::numeric_limits<double>::infinity());
  SnapshotReader r(w.bytes());
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.f64(), -std::numeric_limits<double>::infinity());
  r.finish();
}

// -------------------------------------------- per-family bit-identity ----

using core::ProtocolKind;
using core::TrialOptions;
using core::TrialOutcome;
using graph::GeometricGraph;

bool outcomes_identical(const TrialOutcome& a, const TrialOutcome& b) {
  return a.converged == b.converged && a.final_error == b.final_error &&
         a.sum_drift == b.sum_drift &&
         a.transmissions.by_category == b.transmissions.by_category &&
         a.far_exchanges == b.far_exchanges &&
         a.near_exchanges == b.near_exchanges;
}

class FamilySnapshot : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(FamilySnapshot, InterruptedRunFinishesBitIdentically) {
  const ProtocolKind kind = GetParam();
  Rng graph_rng(4000);
  const auto g = GeometricGraph::sample(256, 2.0, graph_rng);
  Rng field_rng(4001);
  auto x0 = sim::gaussian_field(g.node_count(), field_rng);
  sim::center_and_normalize(x0);

  TrialOptions options;
  options.eps = 1e-2;

  // Round-based kinds count the cadence in top rounds; everything else in
  // engine ticks.  Both must fire several times inside this tiny trial.
  const bool round_based = kind == ProtocolKind::kAffineOneLevel ||
                           kind == ProtocolKind::kAffineMultilevel;
  sim::CheckpointPolicy policy;
  policy.every_ticks = round_based ? 2 : 512;

  // Uninterrupted reference + captured first-snapshot payload.
  std::string mid_payload;
  std::uint64_t mid_ticks = 0;
  policy.persist = [&](std::string_view payload, std::uint64_t ticks) {
    if (mid_payload.empty()) {
      mid_payload.assign(payload.data(), payload.size());
      mid_ticks = ticks;
    }
  };
  Rng rng_a(4002);
  const auto reference =
      core::run_protocol_trial(kind, g, x0, rng_a, options, policy, {});
  ASSERT_FALSE(mid_payload.empty())
      << "checkpoint cadence never fired — the interruption test is vacuous";

  // "Crash" after the first snapshot: a fresh trial of the identical
  // configuration restores the payload and must finish bit-identically.
  Rng rng_b(4002);
  const auto resumed = core::run_protocol_trial(
      kind, g, x0, rng_b, options, sim::CheckpointPolicy{}, mid_payload);
  EXPECT_TRUE(outcomes_identical(reference, resumed))
      << core::protocol_kind_name(kind) << ": resumed from tick "
      << mid_ticks << " ref_err=" << reference.final_error
      << " resumed_err=" << resumed.final_error;
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FamilySnapshot,
    ::testing::Values(ProtocolKind::kBoydPairwise,
                      ProtocolKind::kDimakisGeographic,
                      ProtocolKind::kPathAveraging,
                      ProtocolKind::kAffineOneLevel,
                      ProtocolKind::kAffineMultilevel,
                      ProtocolKind::kAffineAsync,
                      ProtocolKind::kAffineDecentralized),
    [](const auto& info) {
      std::string name(core::protocol_kind_name(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FamilySnapshotContract, ResumePayloadSelfIdentifiesProtocolAndSize) {
  // Restoring a payload into a different kind (or size) must fail loudly,
  // never continue with invented state.
  Rng graph_rng(4100);
  const auto g = GeometricGraph::sample(128, 2.0, graph_rng);
  Rng field_rng(4101);
  auto x0 = sim::gaussian_field(g.node_count(), field_rng);
  sim::center_and_normalize(x0);

  TrialOptions options;
  options.eps = 1e-2;
  sim::CheckpointPolicy policy;
  policy.every_ticks = 256;
  std::string payload;
  policy.persist = [&](std::string_view bytes, std::uint64_t) {
    if (payload.empty()) payload.assign(bytes.data(), bytes.size());
  };
  Rng rng(4102);
  (void)core::run_protocol_trial(ProtocolKind::kBoydPairwise, g, x0, rng,
                                 options, policy, {});
  ASSERT_FALSE(payload.empty());

  Rng other(4102);
  // CheckError or ArgumentError depending on which identity field trips
  // first; both are logic errors, never a silent continue.
  EXPECT_THROW((void)core::run_protocol_trial(ProtocolKind::kDimakisGeographic,
                                              g, x0, other, options,
                                              sim::CheckpointPolicy{}, payload),
               std::logic_error);
}

// -------------------------------------------------------- SnapshotStore ----

std::string test_dir(const std::string& leaf) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("ggsnap_" + leaf);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SnapshotStore, SaveLoadRemoveRoundTrip) {
  const exp::SnapshotStore store(test_dir("roundtrip"), "tiny", 7);
  EXPECT_FALSE(store.try_load(3, 1, 42).has_value());  // absent: fresh run

  store.save(3, 1, 42, 9000, "trajectory bytes");
  const auto loaded = store.try_load(3, 1, 42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->ticks, 9000u);
  EXPECT_EQ(loaded->payload, "trajectory bytes");

  // Overwrite-by-flip: a newer snapshot replaces the older atomically.
  store.save(3, 1, 42, 18000, "later bytes");
  EXPECT_EQ(store.try_load(3, 1, 42)->payload, "later bytes");

  store.remove(3, 1);
  EXPECT_FALSE(store.try_load(3, 1, 42).has_value());
  store.remove(3, 1);  // idempotent
}

TEST(SnapshotStore, TruncationAtEveryByteRestartsInsteadOfPoisoning) {
  const exp::SnapshotStore store(test_dir("truncate"), "tiny", 7);
  store.save(0, 0, 11, 500, "payload under test");
  const std::string path = store.path_for(0, 0);
  const std::string bytes = slurp(path);
  ASSERT_GT(bytes.size(), 8u);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    spit(path, std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(store.try_load(0, 0, 11).has_value())
        << "prefix length " << len << " restored from a torn file";
  }
  spit(path, bytes);  // the intact file still loads after all that
  EXPECT_TRUE(store.try_load(0, 0, 11).has_value());
}

TEST(SnapshotStore, PayloadCorruptionFailsTheChecksumAndRestarts) {
  const exp::SnapshotStore store(test_dir("corrupt"), "tiny", 7);
  store.save(0, 0, 11, 500, "payload under test");
  const std::string path = store.path_for(0, 0);
  std::string bytes = slurp(path);
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit inside the payload bytes
  spit(path, bytes);
  EXPECT_FALSE(store.try_load(0, 0, 11).has_value());
}

TEST(SnapshotStore, IdentityMismatchThrowsInsteadOfRestoring) {
  const std::string dir = test_dir("identity");
  const exp::SnapshotStore store(dir, "tiny", 7);
  store.save(2, 3, 99, 500, "payload");

  // Wrong replicate seed for the same slot: a different seed stream means
  // a different trajectory — restoring would silently poison the sweep.
  EXPECT_THROW((void)store.try_load(2, 3, 100), ArgumentError);

  // Same directory opened for a different scenario or master seed.
  const exp::SnapshotStore other_scenario(dir, "other", 7);
  EXPECT_THROW((void)other_scenario.try_load(2, 3, 99), ArgumentError);
  const exp::SnapshotStore other_master(dir, "tiny", 8);
  EXPECT_THROW((void)other_master.try_load(2, 3, 99), ArgumentError);
}

TEST(SnapshotStore, SchemaMismatchThrowsLoudly) {
  const exp::SnapshotStore store(test_dir("schema"), "tiny", 7);
  store.save(0, 0, 11, 500, "payload");
  const std::string path = store.path_for(0, 0);

  // Forge the same container with a bumped schema word (field order per
  // snapshot_store.cpp: schema, scenario, master_seed, cell, replicate,
  // seed, ticks, checksum, payload).
  SnapshotWriter w;
  w.u32(exp::kSchemaVersion + 1);
  w.str("tiny");
  w.u64(7);
  w.u64(0);
  w.u32(0);
  w.u64(11);
  w.u64(500);
  w.u64(fnv1a64("payload"));
  w.str("payload");
  spit(path, "GGSNAP1\n" + w.bytes());
  EXPECT_THROW((void)store.try_load(0, 0, 11), ArgumentError);
}

TEST(SnapshotStore, ForeignFileWithBadMagicRestarts) {
  const exp::SnapshotStore store(test_dir("magic"), "tiny", 7);
  spit(store.path_for(0, 0), "not a snapshot at all");
  EXPECT_FALSE(store.try_load(0, 0, 11).has_value());
}

// ------------------------------------------------------- JSONL schema ----

TEST(JsonlSchema, ReplicateRecordsCarryTheSchemaVersion) {
  std::ostringstream out;
  exp::JsonLinesSink sink(out);
  exp::Cell cell;
  cell.n = 8;
  exp::ReplicateResult result;
  result.seed = 3;
  sink.write_replicate("tiny", 7, cell, 0, 0, result);
  EXPECT_NE(out.str().find("\"schema\":" +
                           std::to_string(exp::kSchemaVersion)),
            std::string::npos)
      << out.str();
}

TEST(JsonlSchema, MismatchedStampIsRejectedLoudly) {
  std::ostringstream out;
  exp::JsonLinesSink sink(out);
  exp::Cell cell;
  cell.n = 8;
  exp::ReplicateResult result;
  result.seed = 3;
  sink.write_replicate("tiny", 7, cell, 0, 0, result);

  const std::string stamp =
      "\"schema\":" + std::to_string(exp::kSchemaVersion);
  std::string line = out.str();
  const auto at = line.find(stamp);
  ASSERT_NE(at, std::string::npos);

  // A record from a FUTURE schema must throw, not be skipped as noise —
  // silently dropping it would re-run (and re-append) that replicate.
  std::string future = line;
  future.replace(at, stamp.size(), "\"schema\":999");
  exp::Checkpoint reject("tiny", 7);
  std::istringstream future_in(future);
  EXPECT_THROW(reject.load(future_in), ArgumentError);

  // A legacy record with NO stamp predates the field and still loads.
  std::string legacy = line;
  legacy.erase(at - 1, stamp.size() + 1);  // also drop the leading comma
  exp::Checkpoint accept("tiny", 7);
  std::istringstream legacy_in(legacy);
  accept.load(legacy_in);
  EXPECT_EQ(accept.size(), 1u);
  EXPECT_EQ(accept.stats().malformed, 0u);
}

// ------------------------------------------------- Runner end-to-end ----

exp::Scenario snapshot_scenario() {
  exp::Scenario scenario;
  scenario.name = "snap-e2e";
  scenario.replicates = 2;
  scenario.master_seed = 13;
  for (const std::size_t n : {96, 128}) {
    auto& cell = scenario.add(core::ProtocolKind::kBoydPairwise, n);
    cell.options.eps = 1e-2;
  }
  return scenario;
}

std::size_t snapshot_files(const std::string& dir) {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ggsnap") ++count;
  }
  return count;
}

bool summaries_identical(const exp::SweepSummary& a,
                         const exp::SweepSummary& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& x = a.cells[i];
    const auto& y = b.cells[i];
    if (x.converged != y.converged || x.median_tx != y.median_tx ||
        x.q25_tx != y.q25_tx || x.q75_tx != y.q75_tx ||
        x.mean_control_share != y.mean_control_share) {
      return false;
    }
  }
  return true;
}

TEST(RunnerSnapshots, CleanRunMatchesUncheckpointedAndLeavesNoFiles) {
  const auto scenario = snapshot_scenario();
  exp::RunnerOptions plain;
  plain.threads = 2;
  const auto reference = exp::Runner(plain).run(scenario);

  const std::string dir = test_dir("runner_clean");
  exp::RunnerOptions snapshotting = plain;
  snapshotting.snapshot_dir = dir;
  snapshotting.snapshot_every_ticks = 300;
  const auto checked = exp::Runner(snapshotting).run(scenario);

  // Snapshots are pure reads: enabling them cannot change results — and a
  // completed sweep cleans up every slot file.
  EXPECT_TRUE(summaries_identical(reference, checked));
  EXPECT_EQ(snapshot_files(dir), 0u);
}

TEST(RunnerSnapshots, CrashAfterPersistResumesBitIdentically) {
  const auto scenario = snapshot_scenario();
  exp::RunnerOptions plain;
  plain.threads = 1;
  const auto reference = exp::Runner(plain).run(scenario);

  // "Crash" mid-sweep: the progress sink throws on the first completed
  // replicate.  Its snapshot is only removed AFTER progress succeeds, so
  // the slot file survives for the re-run (the documented crash window).
  const std::string dir = test_dir("runner_crash");
  exp::RunnerOptions crashing = plain;
  crashing.snapshot_dir = dir;
  crashing.snapshot_every_ticks = 300;
  bool threw = false;
  crashing.progress = [&](const exp::Cell&, std::size_t, std::uint32_t,
                          const exp::ReplicateResult&) {
    if (!threw) {
      threw = true;
      throw IoError("simulated sink failure");
    }
  };
  EXPECT_THROW((void)exp::Runner(crashing).run(scenario), IoError);
  ASSERT_GE(snapshot_files(dir), 1u)
      << "the interrupted replicate left no snapshot to resume from";

  // Re-run with the same flags: the surviving slot restores mid-replicate
  // and the aggregates come out bit-identical to the uninterrupted run.
  exp::RunnerOptions resuming = plain;
  resuming.snapshot_dir = dir;
  resuming.snapshot_every_ticks = 300;
  const auto resumed = exp::Runner(resuming).run(scenario);
  EXPECT_TRUE(summaries_identical(reference, resumed));
  EXPECT_EQ(snapshot_files(dir), 0u);
}

}  // namespace
}  // namespace geogossip
