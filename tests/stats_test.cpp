// Unit + property tests for the stats module.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "stats/chernoff.hpp"
#include "stats/confidence.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace geogossip::stats {
namespace {

// ---------------------------------------------------------- RunningStat ----

TEST(RunningStat, MatchesNaiveMoments) {
  const std::vector<double> data{1.5, -2.0, 3.25, 0.0, 7.75, -1.25};
  RunningStat stat;
  for (const double v : data) stat.push(v);

  const double mean = std::accumulate(data.begin(), data.end(), 0.0) /
                      static_cast<double>(data.size());
  double var = 0.0;
  for (const double v : data) var += (v - mean) * (v - mean);
  var /= static_cast<double>(data.size() - 1);

  EXPECT_EQ(stat.count(), data.size());
  EXPECT_NEAR(stat.mean(), mean, 1e-12);
  EXPECT_NEAR(stat.variance(), var, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), -2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 7.75);
  EXPECT_NEAR(stat.sum(), std::accumulate(data.begin(), data.end(), 0.0),
              1e-12);
}

TEST(RunningStat, EmptyAndSingleDefaults) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  stat.push(5.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.standard_error(), 0.0);
}

TEST(RunningStat, MergeEqualsSequentialPush) {
  Rng rng(77);
  RunningStat whole;
  RunningStat part_a;
  RunningStat part_b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 2.0);
    whole.push(v);
    (i < 400 ? part_a : part_b).push(v);
  }
  part_a.merge(part_b);
  EXPECT_EQ(part_a.count(), whole.count());
  EXPECT_NEAR(part_a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(part_a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(part_a.min(), whole.min());
  EXPECT_DOUBLE_EQ(part_a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a;
  RunningStat b;
  b.push(1.0);
  b.push(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStat c;
  a.merge(c);
  EXPECT_EQ(a.count(), 2u);
}

// ------------------------------------------------------------ Quantiles ----

TEST(Quantiles, ExactOrderStatistics) {
  Quantiles q({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(q.min(), 1.0);
  EXPECT_DOUBLE_EQ(q.max(), 5.0);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.75), 4.0);
  EXPECT_DOUBLE_EQ(q.iqr(), 2.0);
  EXPECT_DOUBLE_EQ(q.mean(), 3.0);
}

TEST(Quantiles, InterpolatesBetweenSamples) {
  Quantiles q({0.0, 10.0});
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.1), 1.0);
}

TEST(Quantiles, PushInvalidatesCache) {
  Quantiles q;
  q.push(1.0);
  EXPECT_DOUBLE_EQ(q.median(), 1.0);
  q.push(3.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
}

TEST(Quantiles, Validation) {
  Quantiles empty;
  EXPECT_THROW(empty.median(), ArgumentError);
  Quantiles q({1.0});
  EXPECT_THROW(q.quantile(-0.1), ArgumentError);
  EXPECT_THROW(q.quantile(1.1), ArgumentError);
}

TEST(SummaryHelpers, VectorForms) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_NEAR(variance_of(v), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(l2_norm({3.0, 4.0}), 5.0, 1e-12);
  EXPECT_NEAR(deviation_from_mean({1.0, 3.0}), 1.0, 1e-12);
  EXPECT_THROW(mean_of({}), ArgumentError);
  EXPECT_THROW(variance_of({1.0}), ArgumentError);
}

// ------------------------------------------------------------ Histogram ----

TEST(Histogram, BinAssignmentAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive -> overflow
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, FractionDensityCdf) {
  Histogram h(0.0, 2.0, 2);
  h.add_n(0.5, 3);
  h.add_n(1.5, 1);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.density(0), 0.75);
  EXPECT_DOUBLE_EQ(h.cdf(0), 0.75);
  EXPECT_DOUBLE_EQ(h.cdf(1), 1.0);
}

TEST(Histogram, ToStringShowsBars) {
  Histogram h(0.0, 1.0, 2);
  h.add_n(0.25, 10);
  const std::string text = h.to_string(10);
  EXPECT_NE(text.find("##########"), std::string::npos);
}

TEST(HistogramUniformity, TvAndChiSquared) {
  EXPECT_DOUBLE_EQ(tv_distance_from_uniform({10, 10, 10, 10}), 0.0);
  EXPECT_NEAR(tv_distance_from_uniform({20, 0}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(chi_squared_uniform({10, 10}), 0.0);
  EXPECT_NEAR(chi_squared_uniform({15, 5}), 5.0, 1e-12);
  EXPECT_THROW(tv_distance_from_uniform({}), ArgumentError);
  EXPECT_THROW(chi_squared_uniform({0, 0}), ArgumentError);
}

// ----------------------------------------------------------- Regression ----

TEST(Regression, ExactLineRecovery) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.5 * x - 1.0);
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(10.0), 24.0, 1e-12);
}

TEST(Regression, NoisyLineHasLowerR2) {
  Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(3.0 * i + rng.normal(0.0, 40.0));
  }
  const auto fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.15);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.9);
  EXPECT_GT(fit.slope_stderr, 0.0);
}

TEST(Regression, Validation) {
  EXPECT_THROW(fit_line({1.0}, {1.0}), ArgumentError);
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0}), ArgumentError);
  EXPECT_THROW(fit_line({2.0, 2.0}, {1.0, 2.0}), ArgumentError);
}

TEST(Regression, PowerLawRecovery) {
  std::vector<double> xs{100, 200, 400, 800, 1600};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 * std::pow(x, 1.5));
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-10);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-8);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.predict(3200), 3.0 * std::pow(3200, 1.5), 1e-4);
  EXPECT_THROW(fit_power_law({1.0, -1.0, 2.0}, {1.0, 1.0, 1.0}),
               ArgumentError);
}

TEST(Regression, ExponentialRecovery) {
  std::vector<double> ts{0, 10, 20, 30, 40};
  std::vector<double> ys;
  for (const double t : ts) ys.push_back(5.0 * std::pow(0.9, t));
  const auto fit = fit_exponential(ts, ys);
  EXPECT_NEAR(fit.rate, 0.9, 1e-10);
  EXPECT_NEAR(fit.coefficient, 5.0, 1e-8);
}

// ------------------------------------------------------------- Chernoff ----

TEST(Chernoff, BoundsDecreaseWithMeanAndDelta) {
  EXPECT_LT(chernoff_upper_tail(100, 0.2), chernoff_upper_tail(50, 0.2));
  EXPECT_LT(chernoff_upper_tail(100, 0.3), chernoff_upper_tail(100, 0.2));
  EXPECT_LT(chernoff_lower_tail(100, 0.2), 1.0);
  EXPECT_THROW(chernoff_lower_tail(100, 1.5), ArgumentError);
  EXPECT_THROW(chernoff_upper_tail(0.0, 0.5), ArgumentError);
}

TEST(Chernoff, TwoSidedCapsAtOne) {
  EXPECT_DOUBLE_EQ(chernoff_two_sided(0.01, 0.1), 1.0);
  EXPECT_LT(chernoff_two_sided(1000, 0.2), 1e-5);
}

TEST(Chernoff, OccupancyUnionBound) {
  const double single = chernoff_two_sided(100, 0.1);
  EXPECT_NEAR(occupancy_deviation_bound(100, 0.1, 50),
              std::min(1.0, 50 * single), 1e-15);
}

TEST(Chernoff, RequiredMeanIsSufficientAndTight) {
  const double mu = required_mean_for_occupancy(0.1, 100, 0.01);
  EXPECT_LE(occupancy_deviation_bound(mu, 0.1, 100), 0.01 + 1e-9);
  EXPECT_GT(occupancy_deviation_bound(mu * 0.8, 0.1, 100), 0.01);
}

TEST(Chernoff, PaperOccupancyRegime) {
  // §3: sqrt(n) squares with mean sqrt(n) occupants each, 1/10 deviation.
  // The union bound should be < 1 for large n (and is miles below at the
  // asymptotic scale the paper works with).
  const double n = 1e8;
  const double bound =
      occupancy_deviation_bound(std::sqrt(n), 0.1, static_cast<std::size_t>(
                                                       std::sqrt(n)));
  EXPECT_LT(bound, 1e-10);
}

// ----------------------------------------------------------- Confidence ----

TEST(Confidence, MeanIntervalCoversTruth) {
  Rng rng(123);
  int covered = 0;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    RunningStat stat;
    for (int i = 0; i < 50; ++i) stat.push(rng.normal(10.0, 3.0));
    if (mean_confidence_interval(stat, 0.95).contains(10.0)) ++covered;
  }
  // 95% nominal coverage; allow generous slack for 200 rounds.
  EXPECT_GT(covered, kRounds * 0.88);
}

TEST(Confidence, IntervalWidthShrinksWithSamples) {
  Rng rng(9);
  RunningStat small;
  RunningStat large;
  for (int i = 0; i < 20; ++i) small.push(rng.normal());
  for (int i = 0; i < 2000; ++i) large.push(rng.normal());
  EXPECT_LT(mean_confidence_interval(large).width(),
            mean_confidence_interval(small).width());
}

TEST(Confidence, RejectsUnsupportedLevel) {
  RunningStat stat;
  stat.push(1.0);
  stat.push(2.0);
  EXPECT_THROW(mean_confidence_interval(stat, 0.5), ArgumentError);
}

TEST(Confidence, WilsonProportionProperties) {
  const auto interval = proportion_confidence_interval(80, 100);
  EXPECT_GT(interval.lo, 0.7);
  EXPECT_LT(interval.hi, 0.9);
  EXPECT_TRUE(interval.contains(0.8));
  // Degenerate endpoints stay within [0, 1].
  const auto all = proportion_confidence_interval(100, 100);
  EXPECT_LE(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.9);
  const auto none = proportion_confidence_interval(0, 100);
  EXPECT_GE(none.lo, 0.0);
  EXPECT_THROW(proportion_confidence_interval(5, 0), ArgumentError);
  EXPECT_THROW(proportion_confidence_interval(5, 4), ArgumentError);
}

// Property sweep: Welford matches naive two-pass on random data of many
// sizes.
class WelfordProperty : public ::testing::TestWithParam<int> {};

TEST_P(WelfordProperty, AgreesWithTwoPass) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  std::vector<double> data;
  data.reserve(static_cast<std::size_t>(n));
  RunningStat stat;
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    data.push_back(v);
    stat.push(v);
  }
  EXPECT_NEAR(stat.mean(), mean_of(data), 1e-9);
  if (n >= 2) {
    EXPECT_NEAR(stat.variance(), variance_of(data), 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WelfordProperty,
                         ::testing::Values(2, 3, 7, 64, 501, 4096));

}  // namespace
}  // namespace geogossip::stats
